// Partition chaos property test (DESIGN.md §5 "Partitions & failure
// detection"): seeded plans mixing two-sided cuts, asymmetric one-way
// cuts, gray-failure windows and an overlapping no-stall crash run
// against seeded workloads with the heartbeat failure detector, replica
// leases and tracing all enabled. For every plan the partition oracle
// must hold — every holding pen drained, nothing delivered across a live
// cut, and the command log replaying (under the recorded membership
// schedule when the detector fired) to the same placements and state —
// replica copies must cohere, and the entire outcome (decision digest,
// placement digest, TRACE digest, state checksum, commits, pen and
// detector counters) must be bit-identical across hash salts AND across
// sequential vs 8-thread simulation.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;
using fault::InvariantMonitor;

constexpr int kNumSeeds = 25;
constexpr uint64_t kSeedBase = 20'267'000;

std::vector<uint64_t> PerturbationSalts() {
  return {HashSalt(), 0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL};
}

ClusterConfig PartitionConfig(int threads) {
  ClusterConfig config;
  config.num_nodes = 3;
  config.num_records = 6'000;
  config.hermes.fusion_table_capacity = 250;
  config.detector.enabled = true;
  config.replication.enabled = true;
  config.obs.trace_enabled = true;
  config.sim.threads = threads;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

// Mixed corpus: every plan has one partition cycle (40% one-way) and one
// overlapping no-stall crash cycle on a disjoint victim; every third seed
// adds a gray window on top. Windows are long enough (>= 10ms against a
// 2.5ms heartbeat, miss threshold 3) that the detector converts each cut
// into membership epochs and restores them after the heal.
FaultPlan MakePlan(const ClusterConfig& config, uint64_t seed) {
  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(120);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(10);
  pc.max_outage_us = MsToSim(40);
  pc.no_stall = true;
  pc.partition_cycles = 1;
  pc.min_partition_us = MsToSim(15);
  pc.max_partition_us = MsToSim(45);
  pc.one_way_fraction = 0.4;
  pc.gray = (seed % 3) == 0;
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 300;
  return FaultPlan::Generate(pc, seed);
}

struct PartitionOutcome {
  uint64_t decision_digest = 0;
  uint64_t placement_digest = 0;
  uint64_t trace_digest = 0;
  uint64_t state_checksum = 0;
  uint64_t replica_checksum = 0;
  uint64_t commits = 0;
  uint64_t held_total = 0;
  uint64_t cut_deliveries = 0;
  uint64_t heartbeat_misses = 0;
  uint64_t suspects = 0;
  uint64_t restores = 0;
  uint64_t parked_total = 0;
  uint64_t retry_digest = 0;
  bool monitors_ok = true;
  std::string report;
};

bool SameOutcome(const PartitionOutcome& a, const PartitionOutcome& b) {
  return a.decision_digest == b.decision_digest &&
         a.placement_digest == b.placement_digest &&
         a.trace_digest == b.trace_digest &&
         a.state_checksum == b.state_checksum &&
         a.replica_checksum == b.replica_checksum && a.commits == b.commits &&
         a.held_total == b.held_total &&
         a.cut_deliveries == b.cut_deliveries &&
         a.heartbeat_misses == b.heartbeat_misses &&
         a.suspects == b.suspects && a.restores == b.restores &&
         a.parked_total == b.parked_total && a.retry_digest == b.retry_digest;
}

/// One partition-chaos lifetime. `deep_checks` additionally runs the
/// partition oracle (command-log replay) — once per seed; the compared
/// digests already sit in the outcome for the other salts/threads.
PartitionOutcome RunPartitionChaos(uint64_t plan_seed, bool deep_checks,
                                   int threads = 0) {
  ClusterConfig config = PartitionConfig(threads);
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  const FaultPlan plan = MakePlan(config, plan_seed);
  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  monitor.AttachTracer(&cluster.tracer());
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = Mix64(plan_seed ^ 0x9a17ULL);
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 8, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(120));
  driver.Start();

  injector.RunUntil(MsToSim(120));
  injector.Drain();

  monitor.CheckRecordSingularity(cluster, "final");
  monitor.CheckNoLostRecords(cluster, "final");
  monitor.CheckReplicaCoherence(cluster, "final");
  if (deep_checks) {
    monitor.CheckPartitionOracle(cluster, RouterKind::kHermes,
                                 MapFactory(config), "partition oracle");
  }

  PartitionOutcome out;
  out.decision_digest = cluster.decision_digest().value();
  out.placement_digest = cluster.placement_digest().value();
  out.trace_digest = cluster.trace_digest().value();
  out.state_checksum = cluster.StateChecksum();
  out.replica_checksum = cluster.ReplicaChecksum();
  out.commits = cluster.metrics().total_commits();
  out.held_total = cluster.network().total_held();
  out.cut_deliveries = cluster.network().cut_deliveries();
  out.heartbeat_misses = cluster.failure_detector()->heartbeat_misses();
  out.suspects = cluster.failure_detector()->suspects();
  out.restores = cluster.failure_detector()->restores();
  out.parked_total = cluster.degraded_ledger().parked_total();
  out.retry_digest = cluster.degraded_ledger().RetryDigest();
  out.monitors_ok = monitor.ok();
  out.report = monitor.FailureReport();
  return out;
}

TEST(PartitionChaosTest, SeededPlansHoldOracleAcrossSaltsAndThreads) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  uint64_t total_held = 0, total_suspects = 0, total_restores = 0;

  for (int s = 0; s < kNumSeeds; ++s) {
    const uint64_t plan_seed = kSeedBase + s;
    std::vector<PartitionOutcome> outcomes;
    for (size_t i = 0; i < salts.size(); ++i) {
      SetHashSalt(salts[i]);
      outcomes.push_back(RunPartitionChaos(plan_seed, /*deep_checks=*/i == 0));
    }
    // Same plan under the base salt on 8 simulation threads: the digests
    // (including the trace digest) must not notice the thread count.
    SetHashSalt(salts[0]);
    outcomes.push_back(
        RunPartitionChaos(plan_seed, /*deep_checks=*/false, /*threads=*/8));
    SetHashSalt(old_salt);

    const PartitionOutcome& base = outcomes[0];
    ASSERT_TRUE(base.monitors_ok)
        << "plan seed " << plan_seed << ":\n" << base.report;
    ASSERT_GT(base.commits, 50u) << "plan seed " << plan_seed;
    EXPECT_EQ(base.cut_deliveries, 0u)
        << "plan seed " << plan_seed
        << ": a payload crossed a cut while it was up";
    total_held += base.held_total;
    total_suspects += base.suspects;
    total_restores += base.restores;
    // The detector must end every run whole: each suspicion restored.
    EXPECT_EQ(base.suspects, base.restores) << "plan seed " << plan_seed;

    for (size_t i = 1; i < outcomes.size(); ++i) {
      const bool threaded = i == outcomes.size() - 1;
      ASSERT_TRUE(outcomes[i].monitors_ok)
          << "plan seed " << plan_seed << (threaded ? " threads=8" : " salt ")
          << (threaded ? 0ull : salts[i]) << ":\n" << outcomes[i].report;
      EXPECT_TRUE(SameOutcome(base, outcomes[i]))
          << "plan seed " << plan_seed << " diverged under "
          << (threaded ? "threads=8" : "another salt") << ": digest "
          << std::hex << outcomes[i].decision_digest << " vs "
          << base.decision_digest << ", trace " << outcomes[i].trace_digest
          << " vs " << base.trace_digest << std::dec << ", suspects "
          << outcomes[i].suspects << " vs " << base.suspects
          << " — a partition/detector decision is not a pure function of "
             "(plan seed, config)";
    }
  }
  // Any one plan can draw a cut nothing was routed into or a window the
  // detector missed; across the corpus the machinery must fire.
  EXPECT_GT(total_held, 0u) << "no payload ever parked in a holding pen";
  EXPECT_GT(total_suspects, 0u) << "the detector never suspected a node";
  EXPECT_EQ(total_suspects, total_restores);
}

// The detector alone — no injector, no workload: a hand-built cut must
// convert into membership epochs after exactly miss_threshold heartbeats,
// and the heal must restore membership after confirm_threshold clean
// rounds. Timing is pure virtual arithmetic, so the expectations are
// exact.
TEST(PartitionChaosTest, DetectorConvertsCutIntoMembershipEpochs) {
  ClusterConfig config = PartitionConfig(0);
  config.replication.enabled = false;
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  ASSERT_NE(cluster.failure_detector(), nullptr);
  EXPECT_FALSE(cluster.failure_detector()->armed());

  cluster.PartitionCut(2, /*cut_inbound=*/true, /*cut_outbound=*/true);
  EXPECT_TRUE(cluster.failure_detector()->armed());
  EXPECT_TRUE(cluster.membership().alive(2));

  // miss_threshold ticks in, node 2 leaves the primary component.
  const SimTime period = config.detector.heartbeat_period_us;
  cluster.RunUntil(period * config.detector.miss_threshold + 1);
  EXPECT_FALSE(cluster.membership().alive(2));
  EXPECT_EQ(cluster.failure_detector()->suspects(), 1u);
  EXPECT_EQ(cluster.failure_detector()->suspected().count(2), 1u);

  cluster.PartitionHeal(2);
  // confirm_threshold clean rounds later the node is restored.
  cluster.RunUntil(cluster.Now() +
                   period * (config.detector.confirm_threshold + 1) + 1);
  EXPECT_TRUE(cluster.membership().alive(2));
  EXPECT_EQ(cluster.failure_detector()->restores(), 1u);
  EXPECT_TRUE(cluster.failure_detector()->suspected().empty());
  cluster.Drain();
  EXPECT_FALSE(cluster.failure_detector()->armed());
  EXPECT_EQ(cluster.network().cut_deliveries(), 0u);
}

// An asymmetric (one-way) cut is still a mutual-health failure: the
// victim answers probes in one direction but the pair is unhealthy, so
// the detector isolates it exactly like a two-sided cut.
TEST(PartitionChaosTest, OneWayCutIsolatesTheVictim) {
  ClusterConfig config = PartitionConfig(0);
  config.replication.enabled = false;
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  cluster.PartitionCut(1, /*cut_inbound=*/true, /*cut_outbound=*/false);
  EXPECT_TRUE(cluster.network().reachable(1, 0));
  EXPECT_FALSE(cluster.network().reachable(0, 1));

  const SimTime period = config.detector.heartbeat_period_us;
  cluster.RunUntil(period * config.detector.miss_threshold + 1);
  EXPECT_FALSE(cluster.membership().alive(1));

  cluster.PartitionHeal(1);
  cluster.RunUntil(cluster.Now() +
                   period * (config.detector.confirm_threshold + 1) + 1);
  EXPECT_TRUE(cluster.membership().alive(1));
  cluster.Drain();
}

// One seeded partition lifetime under the PROCESS salt (HERMES_HASH_SALT)
// and thread count (HERMES_SIM_THREADS), printing a parseable outcome
// line. scripts/check_determinism.sh runs this binary under several env
// salts x thread counts and requires every printed PARTITION_PROFILE line
// to be identical across processes.
TEST(PartitionScriptProfile, SingleSeededPlanPrintsOutcome) {
  const PartitionOutcome out =
      RunPartitionChaos(kSeedBase + 3000, /*deep_checks=*/true);
  ASSERT_TRUE(out.monitors_ok) << out.report;
  EXPECT_EQ(out.cut_deliveries, 0u);
  std::printf("PARTITION_PROFILE digest=%016llx placement=%016llx "
              "trace=%016llx checksum=%016llx replicas=%016llx "
              "commits=%llu held=%llu misses=%llu suspects=%llu "
              "restores=%llu parked=%llu retry_digest=%016llx\n",
              static_cast<unsigned long long>(out.decision_digest),
              static_cast<unsigned long long>(out.placement_digest),
              static_cast<unsigned long long>(out.trace_digest),
              static_cast<unsigned long long>(out.state_checksum),
              static_cast<unsigned long long>(out.replica_checksum),
              static_cast<unsigned long long>(out.commits),
              static_cast<unsigned long long>(out.held_total),
              static_cast<unsigned long long>(out.heartbeat_misses),
              static_cast<unsigned long long>(out.suspects),
              static_cast<unsigned long long>(out.restores),
              static_cast<unsigned long long>(out.parked_total),
              static_cast<unsigned long long>(out.retry_digest));
}

}  // namespace
}  // namespace hermes
