#ifndef HERMES_SIM_EVENT_QUEUE_H_
#define HERMES_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/digest.h"
#include "common/types.h"

namespace hermes::sim {

/// A time-ordered queue of closures. Events at equal timestamps fire in
/// insertion order (FIFO tie-break by sequence number) so that a run is a
/// pure function of the inputs — the determinism invariant every property
/// test in this repository leans on.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `fn` to fire at absolute time `when`.
  void Push(SimTime when, std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event. Requires !empty().
  SimTime NextTime() const { return heap_.top().when; }

  /// Removes and returns the earliest pending event. Requires !empty().
  std::function<void()> Pop();

  /// One dequeued event plus its ordering key. `seq` is this queue's own
  /// insertion sequence — for the simulator's lane queues it is the
  /// lane-local component of the global (time, lane, seq) total order.
  struct Popped {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };

  /// Removes and returns the earliest pending event with its ordering key,
  /// without touching the attached digest (the caller owns transcript
  /// mixing). Requires !empty().
  Popped PopEntry();

  /// Sequence number the next Push() will receive (diagnostics).
  uint64_t next_seq() const { return next_seq_; }

  /// Attaches a decision digest: every Pop() mixes the popped entry's
  /// (when, seq) pair, making the full event firing order part of the
  /// cluster's DecisionDigest.
  void set_digest(DecisionDigest* digest) { digest_ = digest; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    // Mutable so the closure can be moved out of the priority queue's
    // const top() during Pop().
    mutable std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
  DecisionDigest* digest_ = nullptr;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_EVENT_QUEUE_H_
