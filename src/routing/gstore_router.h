#ifndef HERMES_ROUTING_GSTORE_ROUTER_H_
#define HERMES_ROUTING_GSTORE_ROUTER_H_

#include <string>

#include "routing/router.h"

namespace hermes::routing {

/// G-Store+ baseline (paper §5.2.1): the look-present single-master
/// adaptation of G-Store. Each transaction's accessed keys form an ad-hoc
/// group pulled to the node owning the majority of them; after the
/// transaction commits, every pulled record is written back to its home
/// partition and the group disbands. No load balancing, no reordering.
class GStoreRouter : public Router {
 public:
  GStoreRouter(partition::OwnershipMap* ownership, const CostModel* costs,
               int num_nodes);

  RoutePlan RouteBatch(const Batch& batch) override;
  std::string name() const override { return "gstore"; }
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_GSTORE_ROUTER_H_
