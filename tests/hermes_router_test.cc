#include "core/hermes_router.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/partition_map.h"

namespace hermes::core {
namespace {

using ::hermes::Mix64;
using ::hermes::Rng;
using partition::CustomRangePartitionMap;
using partition::OwnershipMap;
using partition::RangePartitionMap;
using routing::RoutedTxn;
using routing::RoutePlan;

constexpr Key kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

TxnRequest MakeTxn(TxnId id, std::vector<Key> reads, std::vector<Key> writes) {
  TxnRequest txn;
  txn.id = id;
  txn.read_set = std::move(reads);
  txn.write_set = std::move(writes);
  return txn;
}

Batch MakeBatch(std::vector<TxnRequest> txns) {
  Batch batch;
  batch.txns = std::move(txns);
  return batch;
}

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : ownership_(std::make_unique<CustomRangePartitionMap>(
            std::vector<Key>{0, 2, 5, 5})) {}

  OwnershipMap ownership_;
  CostModel costs_;
};

// The worked example of §3.2.3 / Fig. 5: keys {A,B} on node 0, {C,D,E} on
// node 1, node 2 empty; alpha=0 so theta=2. The expected outcome is the
// paper's final plan (Fig. 5d): order T2,T4,T5,T6,T1,T3 with T2,T4 on
// node 1, T5,T6 rerouted to node 2, and T1,T3 on node 0.
TEST_F(PaperExampleTest, ReproducesFigure5) {
  HermesConfig config;
  config.alpha = 0.0;
  HermesRouter router(&ownership_, &costs_, 3, config);

  Batch batch = MakeBatch({
      MakeTxn(1, {kA, kB, kC}, {kC}),
      MakeTxn(2, {kC, kD, kE}, {kC}),
      MakeTxn(3, {kA, kB, kC}, {kC}),
      MakeTxn(4, {kD}, {kD}),
      MakeTxn(5, {kC}, {kC}),
      MakeTxn(6, {kC}, {kC}),
  });

  RoutePlan plan = router.RouteBatch(batch);
  ASSERT_EQ(plan.txns.size(), 6u);

  std::vector<TxnId> order;
  std::vector<NodeId> routes;
  for (const RoutedTxn& rt : plan.txns) {
    order.push_back(rt.txn.id);
    ASSERT_EQ(rt.masters.size(), 1u);
    routes.push_back(rt.masters[0]);
  }
  EXPECT_EQ(order, (std::vector<TxnId>{2, 4, 5, 6, 1, 3}));
  EXPECT_EQ(routes, (std::vector<NodeId>{1, 1, 2, 2, 0, 0}));

  // Exactly two migrations of C: node1 -> node2 (for T5) and
  // node2 -> node0 (for T1); T6 and T3 reuse the migrated record.
  int migrations = 0;
  for (const RoutedTxn& rt : plan.txns) {
    for (const auto& acc : rt.accesses) {
      if (acc.new_owner != kInvalidNode) {
        ++migrations;
        EXPECT_EQ(acc.key, kC);
      }
    }
  }
  EXPECT_EQ(migrations, 2);
  EXPECT_EQ(router.stats().reroutes, 2u);

  // The fusion table tracks C at its final placement (node 0).
  EXPECT_EQ(router.fusion_table().Peek(kC), 0);
  EXPECT_EQ(ownership_.Owner(kC), 0);
  // D was written at its home; no fusion entry.
  EXPECT_FALSE(router.fusion_table().Peek(kD).has_value());
}

TEST_F(PaperExampleTest, LoadConstraintRespected) {
  HermesConfig config;
  config.alpha = 0.0;
  HermesRouter router(&ownership_, &costs_, 3, config);

  // 9 transactions all hammering node 1's keys: theta = ceil(9/3) = 3.
  std::vector<TxnRequest> txns;
  for (TxnId i = 1; i <= 9; ++i) {
    txns.push_back(MakeTxn(i, {kC, kD}, {kC, kD}));
  }
  RoutePlan plan = router.RouteBatch(MakeBatch(std::move(txns)));

  std::vector<int> load(3, 0);
  for (const RoutedTxn& rt : plan.txns) ++load[rt.masters[0]];
  for (int l : load) EXPECT_LE(l, 3);
}

TEST(HermesRouterTest, RoutesToDataWhenUnconstrained) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;  // effectively no load constraint
  HermesRouter router(&ownership, &costs, 4, config);

  Batch batch = MakeBatch({MakeTxn(1, {10, 11}, {10})});
  RoutePlan plan = router.RouteBatch(batch);
  ASSERT_EQ(plan.txns.size(), 1u);
  EXPECT_EQ(plan.txns[0].masters[0], 0);  // keys 10,11 live on node 0
  for (const auto& acc : plan.txns[0].accesses) {
    EXPECT_FALSE(acc.ship_to_master);
    EXPECT_EQ(acc.new_owner, kInvalidNode);
  }
}

TEST(HermesRouterTest, TemporalLocalityFusesAcrossBatches) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 4, config);

  // Batch 1 fuses keys 10 (node 0) and 90 (node 3) somewhere.
  (void)router.RouteBatch(MakeBatch({MakeTxn(1, {10, 90}, {10, 90})}));
  const NodeId fused = ownership.Owner(10);
  EXPECT_EQ(ownership.Owner(90), fused);

  // Batch 2: the same keys are now co-located: no remote reads.
  RoutePlan plan2 =
      router.RouteBatch(MakeBatch({MakeTxn(2, {10, 90}, {10, 90})}));
  EXPECT_EQ(plan2.txns[0].masters[0], fused);
  for (const auto& acc : plan2.txns[0].accesses) {
    EXPECT_FALSE(acc.ship_to_master);
  }
}

TEST(HermesRouterTest, EvictionAppendsHomeMigration) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  config.fusion_table_capacity = 2;
  config.eviction_policy = EvictionPolicy::kFifo;
  HermesRouter router(&ownership, &costs, 4, config);

  // Fuse three away-from-home keys one batch apart (two local reads on
  // node 0 make it the clear majority); capacity 2 forces the first key's
  // eviction, which must ship it back to its home node.
  (void)router.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  ASSERT_EQ(ownership.Owner(90), 0);
  (void)router.RouteBatch(MakeBatch({MakeTxn(2, {10, 11, 80}, {80})}));
  RoutePlan plan =
      router.RouteBatch(MakeBatch({MakeTxn(3, {10, 11, 60}, {60})}));

  ASSERT_EQ(plan.txns.size(), 1u);
  const RoutedTxn& rt = plan.txns[0];
  bool saw_eviction = false;
  for (const auto& acc : rt.accesses) {
    if (acc.key == 90) {
      saw_eviction = true;
      EXPECT_TRUE(acc.is_write);
      EXPECT_FALSE(acc.ship_to_master);
      EXPECT_EQ(acc.new_owner, 3);  // home of key 90
    }
  }
  EXPECT_TRUE(saw_eviction);
  EXPECT_FALSE(router.fusion_table().Peek(90).has_value());
  EXPECT_EQ(ownership.Owner(90), 3);
  EXPECT_GE(router.stats().evictions, 1u);
}

TEST(HermesRouterTest, WriteRoutedHomeDropsFusionEntry) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 4, config);

  // Fuse 90 onto node 0, then force it home by co-accessing node-3 data.
  (void)router.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  ASSERT_EQ(ownership.Owner(90), 0);
  (void)router.RouteBatch(MakeBatch({MakeTxn(2, {91, 92, 90}, {90})}));
  EXPECT_EQ(ownership.Owner(90), 3);  // back home with node-3 neighbors
  EXPECT_FALSE(router.fusion_table().Peek(90).has_value());
}

TEST(HermesRouterTest, DeterministicAcrossReplicas) {
  CostModel costs;
  HermesConfig config;
  config.fusion_table_capacity = 16;

  auto run = [&](uint64_t) {
    OwnershipMap ownership(std::make_unique<RangePartitionMap>(1000, 5));
    HermesRouter router(&ownership, &costs, 5, config);
    uint64_t digest = 0;
    TxnId next = 1;
    Rng rng(7);
    for (int b = 0; b < 20; ++b) {
      std::vector<TxnRequest> txns;
      for (int i = 0; i < 30; ++i) {
        std::vector<Key> keys = {rng.NextBounded(1000), rng.NextBounded(1000)};
        txns.push_back(MakeTxn(next++, keys, {keys[0]}));
      }
      RoutePlan plan = router.RouteBatch(MakeBatch(std::move(txns)));
      for (const RoutedTxn& rt : plan.txns) {
        digest = Mix64(digest ^ rt.txn.id ^ Mix64(rt.masters[0] + 1));
        for (const auto& acc : rt.accesses) {
          digest = Mix64(digest ^ acc.key ^ Mix64(acc.owner + 2) ^
                         Mix64(acc.new_owner + 3));
        }
      }
    }
    return digest ^ router.fusion_table().Checksum();
  };
  EXPECT_EQ(run(0), run(1));
}

TEST(HermesRouterTest, ChunkMigrationSkipsHotKeys) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 4, config);

  // Fuse key 5 away from home (node 0 -> node 3 with keys 90, 91).
  (void)router.RouteBatch(MakeBatch({MakeTxn(1, {90, 91, 5}, {5})}));
  ASSERT_EQ(ownership.Owner(5), 3);

  TxnRequest chunk;
  chunk.id = 2;
  chunk.kind = TxnKind::kChunkMigration;
  chunk.migration_target = 2;
  for (Key k = 0; k < 10; ++k) chunk.write_set.push_back(k);
  RoutePlan plan = router.RouteBatch(MakeBatch({chunk}));

  ASSERT_EQ(plan.txns.size(), 1u);
  const RoutedTxn& rt = plan.txns[0];
  EXPECT_EQ(rt.masters[0], 2);
  for (const auto& acc : rt.accesses) {
    EXPECT_NE(acc.key, 5u);  // hot key skipped
    EXPECT_EQ(acc.new_owner, 2);
  }
  EXPECT_EQ(rt.accesses.size(), 9u);
  // The range is re-homed, but the fusion key still resolves to its
  // fused location.
  EXPECT_EQ(ownership.Home(5), 2);
  EXPECT_EQ(ownership.Owner(5), 3);
  EXPECT_EQ(ownership.Owner(7), 2);
}

TEST(HermesRouterTest, AddNodeMarkerActivatesNode) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(90, 3));
  CostModel costs;
  HermesConfig config;
  HermesRouter router(&ownership, &costs, 3, config);
  EXPECT_EQ(router.num_active_nodes(), 3);

  TxnRequest marker;
  marker.id = 1;
  marker.kind = TxnKind::kAddNode;
  marker.migration_target = 3;
  (void)router.RouteBatch(MakeBatch({marker}));
  EXPECT_EQ(router.num_active_nodes(), 4);

  // With the load cap binding, some transactions now route to node 3.
  std::vector<TxnRequest> txns;
  for (TxnId i = 2; i < 42; ++i) txns.push_back(MakeTxn(i, {1, 2}, {1}));
  RoutePlan plan = router.RouteBatch(MakeBatch(std::move(txns)));
  bool used_new = false;
  for (const auto& rt : plan.txns) used_new |= rt.masters[0] == 3;
  EXPECT_TRUE(used_new);
}

TEST(HermesRouterTest, RemoveNodeMarkerEvictsItsFusionEntries) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(90, 3));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 3, config);

  // Fuse keys 0 and 60 onto node 2 (home of 60 is node 2).
  (void)router.RouteBatch(MakeBatch({MakeTxn(1, {60, 61, 0}, {0})}));
  ASSERT_EQ(ownership.Owner(0), 2);

  TxnRequest marker;
  marker.id = 2;
  marker.kind = TxnKind::kRemoveNode;
  marker.migration_target = 2;
  marker.range_moves = {{60, 89, 1}};
  RoutePlan plan = router.RouteBatch(MakeBatch({marker}));

  EXPECT_EQ(router.num_active_nodes(), 2);
  ASSERT_EQ(plan.txns.size(), 1u);
  // Key 0's record must ship off the leaving node, back to its home.
  bool shipped = false;
  for (const auto& acc : plan.txns[0].accesses) {
    if (acc.key == 0) {
      shipped = true;
      EXPECT_EQ(acc.owner, 2);
      EXPECT_EQ(acc.new_owner, 0);
    }
  }
  EXPECT_TRUE(shipped);
  EXPECT_EQ(ownership.Owner(0), 0);
}

TEST(HermesRouterTest, ReadsDoNotMigrateRecords) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 4, config);

  // Read-only transaction across partitions: remote reads, no migrations.
  RoutePlan plan = router.RouteBatch(MakeBatch({MakeTxn(1, {10, 90}, {})}));
  ASSERT_EQ(plan.txns.size(), 1u);
  int remote = 0;
  for (const auto& acc : plan.txns[0].accesses) {
    EXPECT_EQ(acc.new_owner, kInvalidNode);
    EXPECT_FALSE(acc.is_write);
    remote += acc.ship_to_master;
  }
  EXPECT_EQ(remote, 1);
  EXPECT_EQ(ownership.Owner(10), 0);
  EXPECT_EQ(ownership.Owner(90), 3);
}

TEST(HermesRouterTest, SpecialTxnsActAsReorderBarriers) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 4, config);

  TxnRequest marker;
  marker.id = 100;
  marker.kind = TxnKind::kAddNode;
  marker.migration_target = 4;

  // Regular txns on both sides of the marker: reordering must not cross it.
  Batch batch = MakeBatch({
      MakeTxn(1, {10}, {10}),
      MakeTxn(2, {20}, {20}),
      marker,
      MakeTxn(3, {30}, {30}),
      MakeTxn(4, {40}, {40}),
  });
  RoutePlan plan = router.RouteBatch(batch);
  ASSERT_EQ(plan.txns.size(), 5u);
  // Positions 0-1 hold txns {1,2}; position 2 the marker; 3-4 hold {3,4}.
  EXPECT_TRUE((plan.txns[0].txn.id == 1 && plan.txns[1].txn.id == 2) ||
              (plan.txns[0].txn.id == 2 && plan.txns[1].txn.id == 1));
  EXPECT_EQ(plan.txns[2].txn.kind, TxnKind::kAddNode);
  EXPECT_TRUE((plan.txns[3].txn.id == 3 && plan.txns[4].txn.id == 4) ||
              (plan.txns[3].txn.id == 4 && plan.txns[4].txn.id == 3));
  // Transactions after the marker may use the new node.
  EXPECT_EQ(router.num_active_nodes(), 5);
}

TEST(HermesRouterTest, EmptyBatchYieldsEmptyPlan) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesRouter router(&ownership, &costs, 4, HermesConfig{});
  RoutePlan plan = router.RouteBatch(Batch{});
  EXPECT_TRUE(plan.txns.empty());
}

TEST(HermesRouterTest, BlindWriteMigratesWithoutShippingValue) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 4, config);

  // Write-only key 90 with two reads on node 0: the record still has to
  // move to the master (its post-write value lives there).
  RoutePlan plan =
      router.RouteBatch(MakeBatch({MakeTxn(1, {10, 11}, {90})}));
  ASSERT_EQ(plan.txns.size(), 1u);
  EXPECT_EQ(plan.txns[0].masters[0], 0);
  for (const auto& acc : plan.txns[0].accesses) {
    if (acc.key == 90) {
      EXPECT_TRUE(acc.is_write);
      EXPECT_EQ(acc.new_owner, 0);
    }
  }
  EXPECT_EQ(ownership.Owner(90), 0);
}

TEST(HermesRouterTest, StatsAccumulateAcrossBatches) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesConfig config;
  config.alpha = 8.0;
  HermesRouter router(&ownership, &costs, 4, config);
  (void)router.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  (void)router.RouteBatch(MakeBatch({MakeTxn(2, {10, 11, 80}, {80})}));
  EXPECT_EQ(router.stats().routed_txns, 2u);
  EXPECT_EQ(router.stats().migrations, 2u);
}

TEST(HermesRouterTest, RoutingCostGrowsSuperlinearly) {
  OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
  CostModel costs;
  HermesRouter router(&ownership, &costs, 4, HermesConfig{});

  auto batch_of = [&](size_t n) {
    std::vector<TxnRequest> txns;
    for (size_t i = 0; i < n; ++i) txns.push_back(MakeTxn(i + 1, {1}, {1}));
    return MakeBatch(std::move(txns));
  };
  const SimTime c10 = router.RouteBatch(batch_of(10)).routing_cost_us;
  const SimTime c1000 = router.RouteBatch(batch_of(1000)).routing_cost_us;
  EXPECT_GT(c1000, 100 * c10);
}

}  // namespace
}  // namespace hermes::core
