// Microbenchmarks for the routing algorithms (google-benchmark), backing
// the paper's §3.2.4 cost analysis: the prescient routing at n=20 nodes
// and b=1000 requests per batch must take only a few milliseconds of real
// CPU per batch (amortized to microseconds per transaction).
//
// `scripts/bench_routing.sh` runs this binary and emits BENCH_routing.json;
// EXPERIMENTS.md records the numbers. The *Reference benchmarks run the
// same workloads through the O(b²·n) reference implementation
// (HermesConfig::use_reference_routing), so one binary measures the
// before/after of the interned/bucketed fast path.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/hermes_router.h"
#include "partition/partition_map.h"
#include "routing/calvin_router.h"
#include "routing/tpart_router.h"

// ---------------------------------------------------------------------------
// Heap-allocation counter: global operator new/delete overrides so the
// steady-state benchmarks can report allocations per routed batch. The
// optimized router's Steps 1–3 run entirely out of reusable scratch, so
// its count is exactly the RoutePlan output materialization (RoutedTxn
// copies and access vectors); the reference implementation adds its
// per-batch map/vector churn on top.
// ---------------------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

// GCC pairs our operator new (malloc) against its builtin operator delete
// and warns; the overrides below are a matched malloc/free pair.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using hermes::Batch;
using hermes::CostModel;
using hermes::HermesConfig;
using hermes::Key;
using hermes::Rng;
using hermes::TxnRequest;

Batch MakeBatch(size_t b, uint64_t records, int reads_per_txn,
                uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  batch.txns.reserve(b);
  for (size_t i = 0; i < b; ++i) {
    TxnRequest txn;
    txn.id = i;
    for (int r = 0; r < reads_per_txn; ++r) {
      txn.read_set.push_back(rng.NextBounded(records));
    }
    txn.write_set = {txn.read_set.front()};
    batch.txns.push_back(std::move(txn));
  }
  return batch;
}

// Contended writes: every transaction writes several keys from a small
// hot pool (not just read_set.front()), so each Step-1 placement moves
// keys that many other candidates read *and write* — the fusion rescoring
// and the Step-3 reader windows are exercised for real.
Batch MakeContendedWriteBatch(size_t b, uint64_t records, int reads_per_txn,
                              int writes_per_txn, uint64_t hot_pool,
                              uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  batch.txns.reserve(b);
  for (size_t i = 0; i < b; ++i) {
    TxnRequest txn;
    txn.id = i;
    for (int r = 0; r < reads_per_txn; ++r) {
      // Half the reads land in the hot pool too: reader lists of the hot
      // keys span most of the batch.
      txn.read_set.push_back(rng.NextBounded(2) == 0
                                 ? rng.NextBounded(hot_pool)
                                 : rng.NextBounded(records));
    }
    for (int w = 0; w < writes_per_txn; ++w) {
      txn.write_set.push_back(rng.NextBounded(hot_pool));
    }
    batch.txns.push_back(std::move(txn));
  }
  return batch;
}

HermesConfig BenchConfig(uint64_t records, bool reference) {
  HermesConfig config;
  config.fusion_table_capacity = records / 40;
  config.use_reference_routing = reference;
  return config;
}

void RunHermesRouteBatch(benchmark::State& state, bool reference) {
  const int n = static_cast<int>(state.range(0));
  const size_t b = static_cast<size_t>(state.range(1));
  const uint64_t records = 1'000'000;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  hermes::core::HermesRouter router(&ownership, &costs, n,
                                    BenchConfig(records, reference));

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}

void BM_HermesRouteBatch(benchmark::State& state) {
  RunHermesRouteBatch(state, /*reference=*/false);
}
BENCHMARK(BM_HermesRouteBatch)
    ->ArgsProduct({{4, 10, 20}, {100, 1000}})
    ->Unit(benchmark::kMillisecond);

void BM_HermesRouteBatchReference(benchmark::State& state) {
  RunHermesRouteBatch(state, /*reference=*/true);
}
BENCHMARK(BM_HermesRouteBatchReference)
    ->Args({20, 100})
    ->Args({20, 1000})
    ->Unit(benchmark::kMillisecond);

void BM_CalvinRouteBatch(benchmark::State& state) {
  const int n = 20;
  const size_t b = static_cast<size_t>(state.range(0));
  const uint64_t records = 1'000'000;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  hermes::routing::CalvinRouter router(&ownership, &costs, n);

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_CalvinRouteBatch)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_TPartRouteBatch(benchmark::State& state) {
  const int n = 20;
  const size_t b = static_cast<size_t>(state.range(0));
  const uint64_t records = 1'000'000;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  hermes::routing::TPartRouter router(&ownership, &costs, n);

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_TPartRouteBatch)->Arg(1000)->Unit(benchmark::kMillisecond);

// Hot-key contention: many transactions share few keys, stressing the
// reorder/reroute machinery (step 3 does the most work here).
void RunHermesContended(benchmark::State& state, bool reference) {
  const int n = 20;
  const size_t b = 1000;
  const uint64_t records = 1000;  // tiny key space: heavy conflicts
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  HermesConfig config;
  config.use_reference_routing = reference;
  hermes::core::HermesRouter router(&ownership, &costs, n, config);

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}

void BM_HermesRouteBatchContended(benchmark::State& state) {
  RunHermesContended(state, /*reference=*/false);
}
BENCHMARK(BM_HermesRouteBatchContended)->Unit(benchmark::kMillisecond);

void BM_HermesRouteBatchContendedReference(benchmark::State& state) {
  RunHermesContended(state, /*reference=*/true);
}
BENCHMARK(BM_HermesRouteBatchContendedReference)
    ->Unit(benchmark::kMillisecond);

// Contended *writes*: multiple hot write keys per transaction force the
// Step-1 fusion rescoring (every placement moves keys with long reader
// and writer lists) and long Step-3 windows — the worst case for the
// reference implementation's rescans.
void RunHermesContendedWrites(benchmark::State& state, bool reference) {
  const int n = 20;
  const size_t b = 1000;
  const uint64_t records = 100'000;
  const uint64_t hot_pool = 64;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  HermesConfig config;
  config.use_reference_routing = reference;
  hermes::core::HermesRouter router(&ownership, &costs, n, config);

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeContendedWriteBatch(b, records, 4, 3, hot_pool, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}

void BM_HermesRouteBatchContendedWrites(benchmark::State& state) {
  RunHermesContendedWrites(state, /*reference=*/false);
}
BENCHMARK(BM_HermesRouteBatchContendedWrites)->Unit(benchmark::kMillisecond);

void BM_HermesRouteBatchContendedWritesReference(benchmark::State& state) {
  RunHermesContendedWrites(state, /*reference=*/true);
}
BENCHMARK(BM_HermesRouteBatchContendedWritesReference)
    ->Unit(benchmark::kMillisecond);

// Steady-state allocation audit: batches are pre-generated and the router
// warmed up, so the timing loop measures routing alone and
// `allocs_per_batch` counts heap allocations per RouteBatch call. For the
// optimized router this is exactly the RoutePlan output (plan/access
// vectors and TxnRequest copies) — Steps 1–3 allocate nothing once the
// scratch capacity is warm. The Reference twin shows the per-batch
// map/vector churn this PR removed (both paths build identical plans, so
// the output allocations cancel in the comparison).
void RunHermesSteadyState(benchmark::State& state, bool reference) {
  const int n = 20;
  const size_t b = 1000;
  const uint64_t records = 1'000'000;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  hermes::core::HermesRouter router(&ownership, &costs, n,
                                    BenchConfig(records, reference));

  std::vector<Batch> pool;
  for (uint64_t seed = 7; seed < 15; ++seed) {
    pool.push_back(MakeBatch(b, records, 4, seed));
  }
  for (const Batch& batch : pool) {
    benchmark::DoNotOptimize(router.RouteBatch(batch));  // warm scratch
  }

  size_t next = 0;
  uint64_t batches = 0;
  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.RouteBatch(pool[next]));
    next = (next + 1) % pool.size();
    ++batches;
  }
  const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  state.SetItemsProcessed(state.iterations() * b);
  state.counters["allocs_per_batch"] =
      batches == 0 ? 0.0
                   : static_cast<double>(after - before) /
                         static_cast<double>(batches);
}

void BM_HermesRouteBatchSteadyState(benchmark::State& state) {
  RunHermesSteadyState(state, /*reference=*/false);
}
BENCHMARK(BM_HermesRouteBatchSteadyState)->Unit(benchmark::kMillisecond);

void BM_HermesRouteBatchSteadyStateReference(benchmark::State& state) {
  RunHermesSteadyState(state, /*reference=*/true);
}
BENCHMARK(BM_HermesRouteBatchSteadyStateReference)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
