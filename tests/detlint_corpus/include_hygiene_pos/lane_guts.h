// detlint-fixture: path=src/sim/lane_guts.h
#include <thread>

inline void Spin() {}
