// detlint-fixture: path=src/core/pointer_order_neg.cc
std::map<std::string, int> rank_;
std::set<uint64_t> live_;
