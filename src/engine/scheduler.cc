#include "engine/scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace hermes::engine {

Scheduler::Scheduler(sim::Simulator* sim, routing::Router* router,
                     TxnExecutor* executor, storage::CommandLog* command_log,
                     const ClusterConfig* config, CallbackResolver resolver,
                     DecisionDigest* digest, DecisionDigest* placement_digest)
    : sim_(sim),
      router_(router),
      executor_(executor),
      command_log_(command_log),
      config_(config),
      resolver_(std::move(resolver)),
      digest_(digest),
      placement_digest_(placement_digest) {}

namespace {

/// Folds one routed transaction's placement decisions into the digest:
/// the transaction identity, each master, and each access's (key, owner,
/// migration target, lock mode, shipping) tuple.
void MixPlacement(DecisionDigest& digest, const routing::RoutedTxn& rt) {
  digest.Mix(rt.txn.id);
  for (NodeId m : rt.masters) {
    digest.Mix(static_cast<uint64_t>(static_cast<uint32_t>(m)) + 1);
  }
  for (const routing::Access& a : rt.accesses) {
    digest.Mix(a.key);
    digest.Mix((static_cast<uint64_t>(static_cast<uint32_t>(a.owner)) << 32) |
               static_cast<uint32_t>(a.new_owner));
    // replica_read occupies bit 2, so plans without leases (every access
    // false) fold to exactly the pre-replication digest values.
    digest.Mix((static_cast<uint64_t>(a.replica_read) << 2) |
               (static_cast<uint64_t>(a.is_write) << 1) |
               static_cast<uint64_t>(a.ship_to_master));
  }
  for (const routing::ReturnShipment& s : rt.on_commit_returns) {
    digest.Mix(s.key);
    digest.Mix((static_cast<uint64_t>(static_cast<uint32_t>(s.from)) << 32) |
               static_cast<uint32_t>(s.to));
  }
  for (const routing::ReplicaOp& op : rt.replica_ops) {
    digest.Mix(op.key);
    digest.Mix((static_cast<uint64_t>(static_cast<uint32_t>(op.node)) << 32) |
               static_cast<uint32_t>(op.source));
    digest.Mix(static_cast<uint64_t>(op.kind) + 1);
  }
}

}  // namespace

void Scheduler::OnBatch(Batch&& batch) {
  if (batch.txns.empty()) return;
  Process(std::move(batch), /*log=*/true);
}

void Scheduler::RouteParked(BatchId release_id,
                            std::vector<TxnRequest>&& txns) {
  if (txns.empty()) return;
  Batch batch;
  batch.id = release_id;
  batch.sequenced_at = sim_->Now();
  batch.txns = std::move(txns);
  Process(std::move(batch), /*log=*/false);
}

void Scheduler::Process(Batch&& batch, bool log) {
  if (log && config_->enable_command_log) command_log_->Append(batch);
  if (log) batches_routed_.Add();

  // Classification happens after logging: the log keeps the original
  // batch, the filter is a deterministic function of (batch contents,
  // membership schedule), so replay refilters identically.
  if (filter_) filter_(batch.id, &batch.txns);
  if (batch.txns.empty()) return;

  // The routing algorithm runs now (its decisions are a pure function of
  // the router state at this point in the total order); its CPU cost plus
  // command logging delays when the executors see the plan.
  routing::RoutePlan plan = router_->RouteBatch(batch);
  if (digest_ != nullptr) {
    for (const routing::RoutedTxn& rt : plan.txns) MixPlacement(*digest_, rt);
  }
  if (placement_digest_ != nullptr) {
    for (const routing::RoutedTxn& rt : plan.txns) {
      MixPlacement(*placement_digest_, rt);
    }
  }
  const SimTime log_cost =
      log && config_->enable_command_log
          ? config_->costs.log_entry_us * batch.txns.size()
          : 0;
  const SimTime start = std::max(sim_->Now(), busy_until_);
  const SimTime dispatch_at = start + plan.routing_cost_us + log_cost;
  busy_until_ = dispatch_at;
  HERMES_TRACE_SPAN(tracer_, obs::EventKind::kBatchRouted, kInvalidNode,
                    batch.id, static_cast<Key>(-1), start,
                    dispatch_at - start, batch.txns.size());

  auto shared_plan =
      std::make_shared<routing::RoutePlan>(std::move(plan));
  sim_->ScheduleAt(dispatch_at, [this, shared_plan]() {
    for (routing::RoutedTxn& rt : shared_plan->txns) {
      if (observer_) observer_(rt);
      TxnExecutor::CommitCallback cb = resolver_(rt.txn);
      executor_->Dispatch(rt, std::move(cb));
    }
  });
}

}  // namespace hermes::engine
