#include "workload/client.h"

#include <memory>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "partition/partition_map.h"

namespace hermes::workload {
namespace {

using engine::Cluster;
using engine::RouterKind;

std::unique_ptr<Cluster> SmallCluster() {
  ClusterConfig config;
  config.num_nodes = 2;
  config.num_records = 1000;
  auto cluster = std::make_unique<Cluster>(
      config, RouterKind::kHermes,
      std::make_unique<partition::RangePartitionMap>(config.num_records,
                                                     config.num_nodes));
  cluster->Load();
  return cluster;
}

TxnRequest SimpleTxn(Key k) {
  TxnRequest txn;
  txn.read_set = {k};
  txn.write_set = {k};
  return txn;
}

TEST(ClosedLoopDriverTest, OneOutstandingPerClient) {
  auto cluster = SmallCluster();
  int outstanding = 0;
  int max_outstanding = 0;
  ClosedLoopDriver driver(cluster.get(), 1, [&](int client, SimTime) {
    EXPECT_EQ(client, 0);
    ++outstanding;
    max_outstanding = std::max(max_outstanding, outstanding);
    return SimpleTxn(1);
  });
  driver.set_stop_time(MsToSim(200));
  // Decrement on every commit via a wrapper: track through commits.
  // The driver's own callback resubmits; completion count suffices.
  driver.Start();
  cluster->RunUntil(MsToSim(200));
  cluster->Drain();
  EXPECT_EQ(max_outstanding, outstanding);  // strictly sequential calls
  EXPECT_GT(driver.completed(), 2u);
  // Generator invocations == completions + the in-flight one at stop.
  EXPECT_LE(static_cast<uint64_t>(outstanding), driver.completed() + 1);
}

TEST(ClosedLoopDriverTest, StopTimeHaltsSubmission) {
  auto cluster = SmallCluster();
  ClosedLoopDriver driver(cluster.get(), 4,
                          [&](int, SimTime) { return SimpleTxn(5); });
  driver.set_stop_time(MsToSim(100));
  driver.Start();
  cluster->RunUntil(SecToSim(1));
  cluster->Drain();
  const uint64_t after_stop = driver.completed();
  cluster->RunUntil(SecToSim(2));
  cluster->Drain();
  EXPECT_EQ(driver.completed(), after_stop);  // nothing new
  EXPECT_EQ(cluster->executor().inflight(), 0u);
}

TEST(ClosedLoopDriverTest, MultipleClientsProgressIndependently) {
  auto cluster = SmallCluster();
  std::vector<int> per_client(8, 0);
  ClosedLoopDriver driver(cluster.get(), 8, [&](int client, SimTime) {
    ++per_client[client];
    return SimpleTxn(static_cast<Key>(client) * 100);
  });
  driver.set_stop_time(MsToSim(300));
  driver.Start();
  cluster->RunUntil(MsToSim(300));
  cluster->Drain();
  for (int c = 0; c < 8; ++c) {
    EXPECT_GT(per_client[c], 1) << "client " << c;
  }
}

TEST(ClosedLoopDriverTest, ZeroClientsIsANoOp) {
  auto cluster = SmallCluster();
  ClosedLoopDriver driver(cluster.get(), 0,
                          [&](int, SimTime) { return SimpleTxn(1); });
  driver.Start();
  cluster->Drain();
  EXPECT_EQ(driver.completed(), 0u);
}

}  // namespace
}  // namespace hermes::workload
