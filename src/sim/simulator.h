#ifndef HERMES_SIM_SIMULATOR_H_
#define HERMES_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/digest.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace hermes::sim {

class ThreadPool;

/// Lane index for work that must run in the exclusive (single-threaded)
/// slice of every epoch: sequencing, routing, shared bookkeeping.
inline constexpr int kControlLane = -1;

/// Discrete-event simulation driver: a virtual clock plus per-lane event
/// queues. Components schedule closures at relative or absolute simulated
/// times; Run*() advances the clock epoch by epoch.
///
/// Epoch-synchronized parallel execution: events are partitioned into one
/// *control* lane plus one lane per simulated node. Each distinct virtual
/// timestamp T is an epoch, executed in three steps:
///
///   1. Control slice — every control event at T runs on the coordinator
///      thread, exclusively (it may touch any state).
///   2. Lane slice — every node lane with events at T drains them, in the
///      lane's own (time, seq) order, potentially on real threads. Lane
///      events may touch only their node's state; pushes to other lanes
///      and Defer()red closures are *staged*, not applied.
///   3. Barrier — the coordinator folds each lane's pop transcript into
///      the decision digest and applies the staged operations, both in
///      ascending lane order, then re-enters step 1 while events remain
///      at T.
///
/// The resulting execution order — and therefore every digest — is a pure
/// function of the event DAG: the thread count only changes which OS
/// thread runs a lane, never what runs before what. `threads == 0` (the
/// oracle mode) runs the identical schedule inline.
class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Inside an event handler this is the handler's
  /// own epoch clock (correct even when other lanes run concurrently).
  SimTime Now() const;

  /// Declares `num_lanes` node lanes executed by `threads` real worker
  /// threads (0 = run lanes inline on the calling thread). Call before
  /// scheduling lane work; may be called again only to grow the lane
  /// count or keep it equal.
  // detlint:runs(exclusive)
  void ConfigureLanes(int num_lanes, int threads);

  /// Grows the lane count (dynamic provisioning). Exclusive context only.
  // detlint:requires(exclusive)
  void EnsureLanes(int num_lanes);

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int threads() const { return threads_; }

  /// Schedules `fn` to run `delay` microseconds from now, on the lane the
  /// caller is executing on (the control lane outside any event).
  void Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when`; times in the past fire "now"
  /// — clamped to the caller's epoch-local clock (the queue never rewinds
  /// any lane's clock).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` on a specific lane (kControlLane, or a node lane; out
  /// of range falls back to the control lane, so un-partitioned setups
  /// degenerate to one queue).
  void ScheduleOnLane(int lane, SimTime delay, std::function<void()> fn);
  void ScheduleOnLaneAt(int lane, SimTime when, std::function<void()> fn);

  /// Runs `fn` in exclusive context: immediately when the caller already
  /// is exclusive (control slice, barrier, or outside a run), otherwise
  /// staged to this epoch's barrier. Lane code uses this for the few
  /// cross-node effects (shared bookkeeping, metrics) it must not apply
  /// while sibling lanes run.
  void Defer(std::function<void()> fn);

  /// Lane the calling thread is currently executing an event on, or
  /// kControlLane when exclusive.
  int current_lane() const;

  /// True while the caller runs inside a node-lane event of this
  /// simulator (i.e. sibling lanes may be running concurrently).
  bool in_lane_context() const;

  /// Runs events until the queues are empty or the next event is later
  /// than `deadline`; the clock ends at min(deadline, last event time).
  void RunUntil(SimTime deadline);

  /// Runs until no events remain.
  void RunAll();

  /// Number of events executed so far (diagnostics).
  uint64_t events_executed() const { return events_executed_; }

  /// Feeds every event pop's (time, lane, seq) into `digest`: the full
  /// firing order, identical for every thread count.
  void set_decision_digest(DecisionDigest* digest) { digest_ = digest; }

  bool idle() const;

 private:
  /// One staged operation from a lane event: either a push to another
  /// lane's queue or a Defer()red exclusive closure.
  struct StagedOp {
    bool is_effect;
    int lane;      // destination lane (pushes only)
    SimTime when;  // firing time (pushes only)
    std::function<void()> fn;
  };

  /// A node lane: its event queue plus the per-epoch buffers its executor
  /// fills (read back by the coordinator after the barrier).
  struct Lane {
    EventQueue queue;
    std::vector<uint64_t> popped_seqs;
    std::vector<StagedOp> staged;
  };

  void RunLoop(SimTime deadline, bool run_all);
  /// Drains lane `i`'s events at epoch `t` (worker or inline).
  void ExecuteLane(int i, SimTime t);
  /// Mixes one pop into the decision digest; lane kControlLane tags 0.
  void MixPop(SimTime when, int lane, uint64_t seq);
  /// Direct push into a lane queue (exclusive context only).
  void PushDirect(int lane, SimTime when, std::function<void()> fn);

  EventQueue control_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<ThreadPool> pool_;
  int threads_ = 0;
  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
  DecisionDigest* digest_ = nullptr;
  std::vector<int> active_lanes_;  // scratch for RunLoop
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_SIMULATOR_H_
