#include "fault/fault_plan.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/rng.h"

namespace hermes::fault {

const char* PartitionModeName(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::kTwoSided:
      return "two-sided";
    case PartitionMode::kInbound:
      return "inbound";
    case PartitionMode::kOutbound:
      return "outbound";
  }
  return "?";
}

FaultPlan FaultPlan::Generate(const FaultPlanConfig& config, uint64_t seed) {
  assert(config.num_nodes > 0);
  assert(config.max_outage_us >= config.min_outage_us);
  assert(config.max_partition_us >= config.min_partition_us);
  // Stall-and-drain crashes drain against the cut and never quiesce; a
  // partitioned plan must use degraded-mode crashes.
  assert((config.partition_cycles <= 0 || config.crash_cycles <= 0 ||
          config.no_stall) &&
         "partition plans require no_stall crashes");
  FaultPlan plan;
  plan.seed = seed;
  plan.link = config.link;
  Rng rng(Mix64(seed ^ 0xfa017ULL));

  // Each crash cycle lives in its own slot of the horizon so a node is
  // never crashed twice concurrently and every rejoin lands before the
  // next crash. The crash point is drawn from the first half of the slot
  // and the outage is clamped to fit. Crash victims are drawn FIRST (and
  // remembered) so partition/gray victims can avoid them.
  std::vector<uint8_t> crashed(static_cast<size_t>(config.num_nodes), 0);
  const int cycles = std::max(config.crash_cycles, 0);
  if (cycles > 0) {
    const SimTime slot = config.horizon_us / cycles;
    for (int c = 0; c < cycles; ++c) {
      const SimTime slot_start = c * slot;
      if (slot < 2 * config.min_outage_us) continue;  // degenerate horizon
      const SimTime crash_window = slot / 2;
      const SimTime crash_at =
          slot_start + rng.NextBounded(std::max<SimTime>(crash_window, 1));
      // Rejoin strictly before the slot ends, so it sorts strictly before
      // the next slot's crash even on timestamp ties.
      const SimTime slot_end = slot_start + slot - 1;
      const SimTime max_fit =
          slot_end > crash_at ? slot_end - crash_at : config.min_outage_us;
      const SimTime hi =
          std::min<SimTime>(config.max_outage_us, std::max<SimTime>(max_fit, 1));
      const SimTime lo = std::min<SimTime>(config.min_outage_us, hi);
      const SimTime outage = lo + rng.NextBounded(hi - lo + 1);
      const NodeId node =
          static_cast<NodeId>(rng.NextBounded(config.num_nodes));
      crashed[static_cast<size_t>(node)] = 1;
      plan.events.push_back(FaultEvent{crash_at,
                                       config.no_stall
                                           ? FaultEvent::Kind::kCrashNoStall
                                           : FaultEvent::Kind::kCrash,
                                       node});
      plan.events.push_back(
          FaultEvent{crash_at + outage, FaultEvent::Kind::kRejoin, node});
    }
  }

  if (config.inject_failover) {
    // Anywhere in the middle 60% of the horizon, so batches are in flight.
    const SimTime lo = config.horizon_us / 5;
    const SimTime span = std::max<SimTime>(3 * config.horizon_us / 5, 1);
    plan.events.push_back(FaultEvent{lo + rng.NextBounded(span),
                                     FaultEvent::Kind::kFailover,
                                     kInvalidNode});
  }

  // Partition/gray victims come from nodes no crash cycle touches: the
  // failure detector marks the minority side down via the same membership
  // path kCrashNoStall uses, and a node must never be marked down twice.
  // The pool is built in node-id order — pure function of the draws above.
  std::vector<NodeId> pool;
  for (NodeId n = 0; n < static_cast<NodeId>(config.num_nodes); ++n) {
    if (!crashed[static_cast<size_t>(n)]) pool.push_back(n);
  }

  // Partition cycles mirror the crash-slot scheme: each start/heal pair
  // lives in its own slot, and the heal lands strictly inside the slot so
  // every pen drains before the next cut (and before the run ends). Slots
  // are laid over the same horizon as crash slots, so a partition window
  // can overlap a crash outage — only the victims are disjoint.
  const int pcycles = std::max(config.partition_cycles, 0);
  if (pcycles > 0 && !pool.empty()) {
    const SimTime slot = config.horizon_us / pcycles;
    for (int c = 0; c < pcycles; ++c) {
      const SimTime slot_start = c * slot;
      if (slot < 2 * config.min_partition_us) continue;
      const SimTime cut_window = slot / 2;
      const SimTime cut_at =
          slot_start + rng.NextBounded(std::max<SimTime>(cut_window, 1));
      const SimTime slot_end = slot_start + slot - 1;
      const SimTime max_fit =
          slot_end > cut_at ? slot_end - cut_at : config.min_partition_us;
      const SimTime hi = std::min<SimTime>(config.max_partition_us,
                                           std::max<SimTime>(max_fit, 1));
      const SimTime lo = std::min<SimTime>(config.min_partition_us, hi);
      const SimTime duration = lo + rng.NextBounded(hi - lo + 1);
      const NodeId node = pool[rng.NextBounded(pool.size())];
      PartitionMode mode = PartitionMode::kTwoSided;
      if (rng.NextDouble() < config.one_way_fraction) {
        mode = rng.NextBounded(2) == 0 ? PartitionMode::kInbound
                                       : PartitionMode::kOutbound;
      }
      plan.events.push_back(
          FaultEvent{cut_at, FaultEvent::Kind::kPartitionStart, node, mode});
      plan.events.push_back(FaultEvent{
          cut_at + duration, FaultEvent::Kind::kPartitionHeal, node, mode});
    }
  }

  // One gray window in the middle 60% of the horizon: links around the
  // victim turn slow/lossy (and drop heartbeats) without any cut.
  if (config.gray && !pool.empty()) {
    const SimTime lo = config.horizon_us / 5;
    const SimTime span = std::max<SimTime>(3 * config.horizon_us / 5, 1);
    const SimTime from = lo + rng.NextBounded(span);
    const SimTime duration =
        config.min_partition_us +
        rng.NextBounded(config.max_partition_us - config.min_partition_us + 1);
    plan.link.gray_from_us = from;
    plan.link.gray_until_us = std::min(from + duration, config.horizon_us);
    plan.link.gray_node = pool[rng.NextBounded(pool.size())];
    plan.link.gray_drop_prob = config.gray_drop_prob;
    plan.link.gray_extra_delay_us = config.gray_extra_delay_us;
    plan.link.gray_heartbeat_drop_prob = config.gray_heartbeat_drop_prob;
  }

  std::sort(plan.events.begin(), plan.events.end());
  return plan;
}

std::string FaultPlan::DebugString() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "fault plan seed=%llx drop=%.3f dup=%.3f jitter<=%llu:\n",
                static_cast<unsigned long long>(seed), link.drop_prob,
                link.duplicate_prob,
                static_cast<unsigned long long>(link.max_jitter_us));
  out += buf;
  if (link.has_gray()) {
    std::snprintf(buf, sizeof(buf),
                  "  gray node=%d window=[%llu,%llu) drop=%.3f delay=%llu "
                  "hb-drop=%.3f\n",
                  link.gray_node,
                  static_cast<unsigned long long>(link.gray_from_us),
                  static_cast<unsigned long long>(link.gray_until_us),
                  link.gray_drop_prob,
                  static_cast<unsigned long long>(link.gray_extra_delay_us),
                  link.gray_heartbeat_drop_prob);
    out += buf;
  }
  for (const FaultEvent& e : events) {
    const char* kind = e.kind == FaultEvent::Kind::kCrash ? "crash"
                       : e.kind == FaultEvent::Kind::kRejoin
                           ? "rejoin"
                           : e.kind == FaultEvent::Kind::kCrashNoStall
                                 ? "crash-nostall"
                                 : e.kind == FaultEvent::Kind::kPartitionStart
                                       ? "partition-start"
                                       : e.kind ==
                                                 FaultEvent::Kind::kPartitionHeal
                                             ? "partition-heal"
                                             : "failover";
    if (e.kind == FaultEvent::Kind::kPartitionStart ||
        e.kind == FaultEvent::Kind::kPartitionHeal) {
      std::snprintf(buf, sizeof(buf), "  t=%llu %s node=%d mode=%s\n",
                    static_cast<unsigned long long>(e.at), kind, e.node,
                    PartitionModeName(e.mode));
    } else {
      std::snprintf(buf, sizeof(buf), "  t=%llu %s node=%d\n",
                    static_cast<unsigned long long>(e.at), kind, e.node);
    }
    out += buf;
  }
  return out;
}

}  // namespace hermes::fault
