#include "routing/clay_planner.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"

namespace hermes::routing {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;

TxnRequest TxnOn(Key a, Key b) {
  TxnRequest txn;
  txn.read_set = {a, b};
  txn.write_set = {a};
  return txn;
}

ClayConfig SmallClay() {
  ClayConfig config;
  config.monitor_window_us = 1000;
  config.range_size = 25;  // one range per node for a 100-record, 4-node DB
  config.overload_slack = 0.10;
  return config;
}

TEST(ClayPlannerTest, NoPlanBeforeWindowElapses) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  ClayPlanner clay(&map, 100, SmallClay());
  clay.Observe(TxnOn(1, 2));
  EXPECT_TRUE(clay.MaybePlan(500, 4).empty());
}

TEST(ClayPlannerTest, NoPlanWhenBalanced) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  ClayPlanner clay(&map, 100, SmallClay());
  for (Key k = 0; k < 100; ++k) clay.Observe(TxnOn(k, (k + 1) % 100));
  EXPECT_TRUE(clay.MaybePlan(2000, 4).empty());
  EXPECT_EQ(clay.plans_produced(), 0u);
}

TEST(ClayPlannerTest, PlansMigrationOffHotNode) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  ClayConfig config = SmallClay();
  config.range_size = 5;  // 5 ranges per node
  ClayPlanner clay(&map, 100, config);
  // Node 0 heavily loaded with heat spread over its five ranges so a
  // movable clump exists; range [0,5) is the hottest.
  for (int i = 0; i < 100; ++i) clay.Observe(TxnOn(1, 2));
  for (int i = 0; i < 60; ++i) clay.Observe(TxnOn(6, 7));
  for (int i = 0; i < 50; ++i) clay.Observe(TxnOn(11, 12));
  for (int i = 0; i < 40; ++i) clay.Observe(TxnOn(16, 17));
  for (int i = 0; i < 40; ++i) clay.Observe(TxnOn(30, 31));  // node 1
  for (int i = 0; i < 30; ++i) clay.Observe(TxnOn(55, 56));  // node 2

  const auto plan = clay.MaybePlan(2000, 4);
  ASSERT_FALSE(plan.empty());
  for (const auto& mv : plan) {
    EXPECT_EQ(map.Owner(mv.lo), 0);   // clumps come off the hot node
    EXPECT_EQ(mv.target, 3);          // coldest node (zero observed load)
  }
  EXPECT_EQ(clay.plans_produced(), 1u);
}

TEST(ClayPlannerTest, WindowStatisticsResetAfterPlan) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  ClayPlanner clay(&map, 100, SmallClay());
  for (int i = 0; i < 100; ++i) clay.Observe(TxnOn(1, 2));
  (void)clay.MaybePlan(2000, 4);
  // Nothing observed since: next window has no data and plans nothing.
  EXPECT_TRUE(clay.MaybePlan(4000, 4).empty());
}

TEST(ClayPlannerTest, DoesNotJustShiftTheHotSpot) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  ClayConfig config = SmallClay();
  config.range_size = 25;  // one range per node: moving it would only
                           // relocate the problem
  ClayPlanner clay(&map, 100, config);
  for (int i = 0; i < 300; ++i) clay.Observe(TxnOn(1, 2));
  const auto plan = clay.MaybePlan(2000, 4);
  EXPECT_TRUE(plan.empty());  // the whole-range clump is hotter than avg
}

TEST(ClayPlannerTest, SingleNodeClusterNeverPlans) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 1));
  ClayPlanner clay(&map, 100, SmallClay());
  for (int i = 0; i < 100; ++i) clay.Observe(TxnOn(1, 2));
  EXPECT_TRUE(clay.MaybePlan(2000, 1).empty());
}

}  // namespace
}  // namespace hermes::routing
