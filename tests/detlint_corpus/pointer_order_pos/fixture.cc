// detlint-fixture: path=src/core/pointer_order_pos.cc
std::map<const Node*, int> rank_;
std::set<Txn*> live_;
