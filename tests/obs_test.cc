// Unit tests for the observability subsystem (src/obs/): trace ring
// bounds, tracer enable/mirror semantics, the trace digest, the telemetry
// registry's sorted export, and the Chrome trace_event JSON shape. The
// end-to-end properties (bit-identical traces across salts, chaos/degraded
// coverage) live in trace_determinism_test.
#include "obs/export.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"

namespace hermes::obs {
namespace {

TEST(TraceRingTest, FillsThenOverwritesOldest) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 4; ++i) {
    TraceEvent e;
    e.seq = i;
    ring.Push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded, 4u);
  EXPECT_EQ(ring.dropped, 0u);

  // Two more pushes overwrite seq 0 and 1; memory stays bounded.
  for (uint64_t i = 4; i < 6; ++i) {
    TraceEvent e;
    e.seq = i;
    ring.Push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded, 6u);
  EXPECT_EQ(ring.dropped, 2u);

  const std::vector<TraceEvent> in_order = ring.InOrder();
  ASSERT_EQ(in_order.size(), 4u);
  for (size_t i = 0; i < in_order.size(); ++i) {
    EXPECT_EQ(in_order[i].seq, 2 + i) << "oldest-first order broke at " << i;
  }
}

TEST(TraceRingTest, InOrderBeforeWrapIsInsertionOrder) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 3; ++i) {
    TraceEvent e;
    e.seq = i;
    ring.Push(e);
  }
  const std::vector<TraceEvent> in_order = ring.InOrder();
  ASSERT_EQ(in_order.size(), 3u);
  for (size_t i = 0; i < in_order.size(); ++i) {
    EXPECT_EQ(in_order[i].seq, i);
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  SimTime now = 42;
  Tracer t;
  t.Configure(16);
  t.set_clock(&now);
  EXPECT_FALSE(t.active());

  // Call sites guard with HERMES_TRACE_ACTIVE / the macro; an unguarded
  // Record() on an inactive tracer must still be a no-op.
  t.Record(EventKind::kTxnCommit, 0, 7);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.digest().count(), 0u);
}

TEST(TracerTest, NullTracerMacroIsANoOp) {
  Tracer* none = nullptr;
  // Must compile and do nothing — this is the cost model for components
  // whose set_tracer was never called (e.g. bare routers in benches).
  HERMES_TRACE(none, EventKind::kTxnCommit, 0, 7);
  HERMES_TRACE_SPAN(none, EventKind::kPhaseExecute, 0, 7, Key(3), 0, 10);
  EXPECT_FALSE(HERMES_TRACE_ACTIVE(none));
}

TEST(TracerTest, EnabledTracerDigestsAndRoutesToNodeRings) {
  SimTime now = 100;
  Tracer t;
  t.Configure(16);
  t.set_clock(&now);
  t.set_enabled(true);
  ASSERT_TRUE(t.active());

  t.Record(EventKind::kBatchSequenced, kInvalidNode, 1);  // ring 0
  t.Record(EventKind::kTxnDispatch, 0, 2);                // ring 1 (node 0)
  now = 150;
  t.RecordSpan(EventKind::kPhaseExecute, 2, 2, Key(9), 120, 30);  // ring 3

  EXPECT_EQ(t.total_recorded(), 3u);
  ASSERT_EQ(t.num_rings(), 4u);  // cluster + nodes 0..2 (auto-grown)
  EXPECT_EQ(t.ring(0).recorded, 1u);
  EXPECT_EQ(t.ring(1).recorded, 1u);
  EXPECT_EQ(t.ring(2).recorded, 0u);
  EXPECT_EQ(t.ring(3).recorded, 1u);
  // Each ring digests its own events (7 Mix() words per event); the
  // tracer digest folds the non-empty rings (two words per ring) in ring
  // order, so emission stays lane-local under the parallel simulator.
  EXPECT_EQ(t.ring(0).digest.count(), 1u * 7)
      << "ring digest no longer covers the full event";
  EXPECT_EQ(t.ring(2).digest.count(), 0u);
  EXPECT_EQ(t.digest().count(), 3u * 2);

  const TraceEvent& span = t.ring(3).events[0];
  EXPECT_EQ(span.when, 120u);
  EXPECT_EQ(span.dur, 30u);
  EXPECT_EQ(span.seq, 0u);  // ring-local emission order
  EXPECT_EQ(span.key, Key(9));
}

TEST(TracerTest, SameEventsSameDigestDifferentOrderDifferentDigest) {
  SimTime now = 0;
  auto run = [&now](bool swapped) {
    Tracer t;
    t.Configure(16);
    t.set_clock(&now);
    t.set_enabled(true);
    if (swapped) {
      t.Record(EventKind::kTxnCommit, 1, 8);
      t.Record(EventKind::kTxnDispatch, 1, 8);
    } else {
      t.Record(EventKind::kTxnDispatch, 1, 8);
      t.Record(EventKind::kTxnCommit, 1, 8);
    }
    return t.digest().value();
  };
  EXPECT_EQ(run(false), run(false));
  EXPECT_NE(run(false), run(true)) << "digest must be order-sensitive";
}

TEST(TracerTest, MirrorOnlyTracerDoesNotDigestOrBuffer) {
  SimTime now = 5;
  Tracer t;
  t.Configure(16);
  t.set_clock(&now);
  t.set_mirror_key(123);  // HERMES_TRACE_KEY UX without full tracing
  EXPECT_TRUE(t.active());
  EXPECT_FALSE(t.enabled());

  t.Record(EventKind::kRecordExtract, 0, 1, Key(123));
  t.Record(EventKind::kRecordExtract, 0, 1, Key(456));
  // The mirror prints to stderr but must not perturb the digest or rings:
  // a run debugged with HERMES_TRACE_KEY still matches a clean run.
  EXPECT_EQ(t.digest().count(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(EventKindTest, NamesAndSpanKinds) {
  EXPECT_STREQ(EventKindName(EventKind::kTxnDispatch), "txn_dispatch");
  EXPECT_STREQ(EventKindName(EventKind::kFusionEvict), "fusion_evict");
  EXPECT_STREQ(EventKindName(EventKind::kUnavailable), "unavailable");
  EXPECT_TRUE(IsSpan(EventKind::kPhaseLockWait));
  EXPECT_TRUE(IsSpan(EventKind::kBatchRouted));
  EXPECT_FALSE(IsSpan(EventKind::kTxnCommit));
  EXPECT_FALSE(IsSpan(EventKind::kFusionEvict));
}

TEST(RegistryTest, SnapshotIsNameSortedAcrossRegistrationOrder) {
  Registry reg;
  uint64_t b = 2, a = 1;
  int64_t g = -3;
  reg.RegisterCounter("hermes_zeta_total", [&b] { return b; });
  reg.RegisterCounter("hermes_alpha_total", [&a] { return a; });
  reg.RegisterGauge("hermes_mid_gauge", [&g] { return g; });

  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "hermes_alpha_total");
  EXPECT_EQ(snap[0].second, 1);
  EXPECT_EQ(snap[1].first, "hermes_zeta_total");
  EXPECT_EQ(snap[1].second, 2);
  EXPECT_EQ(snap[2].first, "hermes_mid_gauge");
  EXPECT_EQ(snap[2].second, -3);

  // Closures read live values: no re-registration needed after updates.
  a = 10;
  EXPECT_EQ(reg.Snapshot()[0].second, 10);
}

TEST(RegistryTest, PrometheusTextShape) {
  Registry reg;
  reg.RegisterCounter("hermes_commits_total", [] { return uint64_t{7}; });
  reg.RegisterGauge("hermes_inflight", [] { return int64_t{2}; });
  reg.RegisterHistogram("hermes_latency_us", [] {
    HistogramSnapshot h;
    h.count = 3;
    h.sum = 60;
    h.buckets = {{10, 1}, {20, 2}};
    return h;
  });

  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE hermes_commits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("hermes_commits_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hermes_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("hermes_inflight 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hermes_latency_us histogram"),
            std::string::npos);
  // Cumulative buckets: le="20" counts the le="10" bucket too.
  EXPECT_NE(text.find("hermes_latency_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hermes_latency_us_bucket{le=\"20\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("hermes_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("hermes_latency_us_sum 60"), std::string::npos);
  EXPECT_NE(text.find("hermes_latency_us_count 3"), std::string::npos);
}

TEST(ChromeTraceTest, JsonShapeAndMetadata) {
  SimTime now = 10;
  Tracer t;
  t.Configure(16);
  t.set_clock(&now);
  t.set_enabled(true);
  t.Record(EventKind::kBatchSequenced, kInvalidNode, 1, Key(-1), 5);
  t.RecordSpan(EventKind::kPhaseExecute, 0, 2, Key(7), 10, 30);

  const std::string json = ChromeTraceJson(t, /*lanes=*/4);
  // Structural markers rather than a JSON parser: the CI artifact step
  // loads the real output in a parser; here we pin the shape.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"batch_sequenced\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase_execute\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"dur\":30"), std::string::npos);
  EXPECT_NE(json.find("\"trace_digest\""), std::string::npos);

  // Byte-identical on re-export: the exporter itself adds no state.
  EXPECT_EQ(json, ChromeTraceJson(t, /*lanes=*/4));
}

}  // namespace
}  // namespace hermes::obs
