// Serializability property tests (the correctness claim the paper proves
// in its supplementary materials): the distributed, pipelined, migrating
// execution must be equivalent to a serial execution of the transactions
// in the order the (deterministic) scheduler fixed.
//
// Method: run a cluster, capture the executed transaction order via the
// dispatch observer, replay the same transactions serially on a
// single-store reference model, and compare placement-insensitive content
// checksums.

#include <memory>
#include <unordered_map>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "storage/record_store.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 8'000;
  config.hermes.fusion_table_capacity = 400;
  return config;
}

/// Applies the committed effects of `txns` (in the given order) to a
/// fresh single store and returns its content checksum.
uint64_t SerialReference(const ClusterConfig& config,
                         const std::vector<TxnRequest>& txns) {
  storage::RecordStore store;
  for (Key k = 0; k < config.num_records; ++k) {
    store.Insert(k, storage::Record{.value = Mix64(k)});
  }
  for (const TxnRequest& txn : txns) {
    if (txn.kind != TxnKind::kRegular || txn.user_abort) continue;
    // Writes fold the writer id exactly as the executor does; duplicate
    // keys in a write-set count once (executors deduplicate).
    std::vector<Key> writes = txn.write_set;
    std::sort(writes.begin(), writes.end());
    writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
    for (Key k : writes) store.ApplyWrite(k, txn.id);
  }
  return store.Checksum();
}

/// Runs `kind` over a YCSB workload, capturing the executed order.
struct RunOutput {
  uint64_t content_checksum;
  std::vector<TxnRequest> executed_order;
  uint64_t commits;
};

RunOutput RunAndCapture(RouterKind kind, uint64_t seed) {
  const ClusterConfig config = SmallConfig();
  Cluster cluster(config, kind,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = seed;
  workload::YcsbWorkload gen(wl, nullptr);
  Rng abort_rng(seed ^ 0xabcd);
  workload::ClosedLoopDriver driver(&cluster, 16, [&](int, SimTime now) {
    TxnRequest txn = gen.Next(now);
    txn.user_abort = abort_rng.NextDouble() < 0.1;
    return txn;
  });
  driver.set_stop_time(MsToSim(600));
  driver.Start();
  cluster.RunUntil(MsToSim(600));
  cluster.Drain();

  RunOutput out;
  out.commits = cluster.metrics().total_commits();
  out.content_checksum = cluster.ContentChecksum();

  // Recover the executed (possibly reordered) transaction order: route
  // the logged batches through a fresh replica router — deterministic
  // routing yields the identical plan the live run executed.
  engine::Cluster replica(
      config, kind,
      std::make_unique<partition::RangePartitionMap>(config.num_records,
                                                     config.num_nodes));
  replica.Load();
  for (const Batch& batch : cluster.command_log().batches()) {
    routing::RoutePlan plan = replica.router().RouteBatch(batch);
    for (const auto& rt : plan.txns) out.executed_order.push_back(rt.txn);
  }
  return out;
}

class SerializabilityTest : public ::testing::TestWithParam<RouterKind> {};

TEST_P(SerializabilityTest, ExecutionEquivalentToSerialOrder) {
  const RunOutput out = RunAndCapture(GetParam(), 2024);
  ASSERT_GT(out.commits, 100u);
  const uint64_t reference =
      SerialReference(SmallConfig(), out.executed_order);
  EXPECT_EQ(out.content_checksum, reference);
}

INSTANTIATE_TEST_SUITE_P(AllRouters, SerializabilityTest,
                         ::testing::Values(RouterKind::kCalvin,
                                           RouterKind::kGStore,
                                           RouterKind::kLeap,
                                           RouterKind::kTPart,
                                           RouterKind::kHermes),
                         [](const auto& info) {
                           switch (info.param) {
                             case RouterKind::kCalvin: return "Calvin";
                             case RouterKind::kGStore: return "GStore";
                             case RouterKind::kLeap: return "Leap";
                             case RouterKind::kTPart: return "TPart";
                             case RouterKind::kHermes: return "Hermes";
                           }
                           return "Unknown";
                         });

TEST(SerializabilityCrossTest, NonReorderingRoutersAgreeOnValues) {
  // Calvin, G-Store, LEAP and T-Part never reorder, so given the same
  // submission stream they execute the same serial order and must end
  // with identical record values (placement differs, values match).
  // Submissions must not depend on commit timing: use a fixed stream.
  auto run = [](RouterKind kind) {
    const ClusterConfig config = SmallConfig();
    Cluster cluster(config, kind,
                    std::make_unique<partition::RangePartitionMap>(
                        config.num_records, config.num_nodes));
    cluster.Load();
    workload::YcsbConfig wl;
    wl.num_records = config.num_records;
    wl.num_partitions = config.num_nodes;
    wl.seed = 5150;
    workload::YcsbWorkload gen(wl, nullptr);
    for (int i = 0; i < 400; ++i) cluster.Submit(gen.Next(0));
    cluster.Drain();
    return cluster.ContentChecksum();
  };
  const uint64_t calvin = run(RouterKind::kCalvin);
  EXPECT_EQ(run(RouterKind::kGStore), calvin);
  EXPECT_EQ(run(RouterKind::kLeap), calvin);
  EXPECT_EQ(run(RouterKind::kTPart), calvin);
}

}  // namespace
}  // namespace hermes
