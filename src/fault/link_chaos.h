#ifndef HERMES_FAULT_LINK_CHAOS_H_
#define HERMES_FAULT_LINK_CHAOS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "sim/network.h"

namespace hermes::fault {

/// Seeded per-message chaos source. Install()ed into a sim::Network, it is
/// consulted once per inter-node Send. Each draw is a *pure function* of
/// (seed, src, dst, link sequence number): there is no shared RNG stream
/// to advance, so draws are identical no matter how sends from different
/// node lanes interleave in real time — the perturbation history is a pure
/// function of (config, seed, per-link message order), which the network
/// keeps total.
///
/// Gray failures (DESIGN.md §5 "Partitions & failure detection") are a
/// window in virtual time during which every link touching one victim
/// node turns persistently slow and lossy: extra (still bounded,
/// retransmitted) drops and extra delay on the data plane — timing and
/// bytes only, never message loss — plus an independent heartbeat-drop
/// draw that lets the failure detector see the sick link even though
/// payloads keep (slowly) landing. The window boundary is virtual time,
/// itself deterministic, so gray draws stay pure functions of
/// (seed, link, sequence number / tick).
class LinkChaos {
 public:
  LinkChaos(const LinkChaosConfig& config, uint64_t seed);

  /// Draws the perturbation for message `link_seq` on the directed link
  /// src -> dst sent at virtual time `now` (gray windows are time-gated).
  /// Stateless: same arguments, same draw.
  sim::Perturbation Draw(NodeId src, NodeId dst, uint64_t link_seq,
                         SimTime now = 0) const;

  /// True when the heartbeat `tick` on the directed link src -> dst is
  /// lost to the gray window. Pure function of (seed, link, tick); always
  /// false outside the window or away from the gray node.
  bool HeartbeatDropped(NodeId src, NodeId dst, uint64_t tick,
                        SimTime now) const;

  /// Hooks this chaos source into `net`. The network keeps a copy of the
  /// std::function, but the config lives here — the LinkChaos must outlive
  /// the hook (the FaultInjector owns both).
  void Install(sim::Network* net);

  const LinkChaosConfig& config() const { return config_; }

 private:
  bool InGrayWindow(NodeId src, NodeId dst, SimTime now) const;

  LinkChaosConfig config_;
  uint64_t seed_;
};

}  // namespace hermes::fault

#endif  // HERMES_FAULT_LINK_CHAOS_H_
