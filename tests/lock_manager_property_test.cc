// Property tests for the conservative ordered lock manager: randomized
// acquire/release schedules checked against the protocol's invariants.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/lock_manager.h"

namespace hermes::storage {
namespace {

struct TxnSpec {
  std::vector<LockRequest> reqs;
  bool granted = false;
  bool released = false;
};

class LockManagerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockManagerPropertyTest, RandomScheduleUpholdsInvariants) {
  Rng rng(GetParam());
  LockManager lm;
  constexpr int kTxns = 400;
  constexpr int kKeys = 40;

  std::vector<TxnSpec> txns(kTxns);
  std::vector<TxnId> grant_log;  // order of full grants
  // Per-key order of exclusive grants must follow acquire order.
  std::map<Key, std::vector<TxnId>> acquire_order;

  auto note_granted = [&](const std::vector<TxnId>& granted) {
    for (TxnId t : granted) {
      ASSERT_FALSE(txns[t].granted) << "double grant of txn " << t;
      txns[t].granted = true;
      grant_log.push_back(t);
      // Invariant: exclusivity. Collect currently granted txns and check
      // no key has two exclusive holders or an exclusive + shared mix.
      std::map<Key, int> exclusive_holders;
      std::map<Key, int> shared_holders;
      for (TxnId u = 0; u < kTxns; ++u) {
        if (!txns[u].granted || txns[u].released) continue;
        for (const LockRequest& r : txns[u].reqs) {
          (r.exclusive ? exclusive_holders[r.key] : shared_holders[r.key])++;
        }
      }
      for (const auto& [key, count] : exclusive_holders) {
        EXPECT_LE(count, 1) << "two exclusive holders on key " << key;
        if (count == 1) {
          EXPECT_EQ(shared_holders[key], 0)
              << "exclusive + shared holders on key " << key;
        }
      }
    }
  };

  TxnId next = 0;
  std::vector<TxnId> live;
  std::vector<TxnId> granted_buf;
  for (int step = 0; step < 3 * kTxns; ++step) {
    const bool do_acquire =
        next < kTxns && (live.empty() || rng.NextBounded(100) < 55);
    granted_buf.clear();
    if (do_acquire) {
      TxnSpec& spec = txns[next];
      std::set<Key> keys;
      const int nkeys = 1 + static_cast<int>(rng.NextBounded(5));
      while (static_cast<int>(keys.size()) < nkeys) {
        keys.insert(rng.NextBounded(kKeys));
      }
      for (Key k : keys) {
        spec.reqs.push_back({k, rng.NextBounded(2) == 0});
        acquire_order[k].push_back(next);
      }
      lm.Acquire(next, spec.reqs, &granted_buf);
      live.push_back(next);
      ++next;
    } else if (!live.empty()) {
      // Release a random live txn (granted or still waiting — both legal).
      const size_t pick = rng.NextBounded(live.size());
      const TxnId victim = live[pick];
      live.erase(live.begin() + pick);
      txns[victim].released = true;
      lm.Release(victim, &granted_buf);
    }
    note_granted(granted_buf);
  }
  // Drain: release everything still live; all remaining non-released txns
  // must eventually be granted before their release (liveness).
  while (!live.empty()) {
    const TxnId victim = live.front();
    live.erase(live.begin());
    granted_buf.clear();
    txns[victim].released = true;
    lm.Release(victim, &granted_buf);
    note_granted(granted_buf);
  }
  EXPECT_EQ(lm.num_txns(), 0u);
  EXPECT_EQ(lm.num_active_keys(), 0u);

  // Invariant: per key, exclusive grants happen in acquire order relative
  // to each other (FIFO; shared grants may batch).
  std::map<Key, std::vector<TxnId>> exclusive_grants;
  for (TxnId t : grant_log) {
    for (const LockRequest& r : txns[t].reqs) {
      if (r.exclusive) exclusive_grants[r.key].push_back(t);
    }
  }
  for (const auto& [key, grants] : exclusive_grants) {
    // Filter the acquire order to granted exclusive txns of this key.
    std::vector<TxnId> expected;
    for (TxnId t : acquire_order[key]) {
      for (const LockRequest& r : txns[t].reqs) {
        if (r.key == key && r.exclusive && txns[t].granted) {
          expected.push_back(t);
        }
      }
    }
    EXPECT_EQ(grants, expected) << "exclusive grant order on key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hermes::storage
