#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace hermes::sim {
namespace {

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = 0;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(50, [&] { ++fired; });
  sim.Schedule(150, [&] { ++fired; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100u);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnIdleQueue) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500u);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(5, [&] { times.push_back(sim.Now()); });
  });
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunAll();
  SimTime seen = 0;
  sim.ScheduleAt(50, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 100u);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 7u);
}

// Regression for the ScheduleAt past-time semantics: a past `when` clamps
// to the *caller's epoch-local clock* and the clamped event takes the next
// sequence number on the caller's lane — so the pop transcript fed to the
// decision digest is exactly (100, seq 0), (100, seq 1) on the control
// lane. Pinned by replaying MixPop's mixing scheme by hand; a change to
// either the clamp rule or the digest total order breaks this test.
TEST(SimulatorTest, ScheduleAtPastClampDigestTranscript) {
  Simulator sim;
  DecisionDigest digest;
  sim.set_decision_digest(&digest);
  SimTime clamped_fire = 0;
  sim.Schedule(100, [&] {
    sim.ScheduleAt(40, [&] { clamped_fire = sim.Now(); });  // 40 < now=100
  });
  sim.RunAll();
  EXPECT_EQ(clamped_fire, 100u);

  DecisionDigest expected;  // MixPop: Mix(when); Mix((lane+1)<<40 ^ seq)
  expected.Mix(100);        // outer event: control lane (tag 0), seq 0
  expected.Mix((uint64_t{0} << 40) ^ 0);
  expected.Mix(100);        // clamped event: same epoch, seq 1
  expected.Mix((uint64_t{0} << 40) ^ 1);
  EXPECT_EQ(digest.value(), expected.value());
  EXPECT_EQ(digest.count(), expected.count());
}

// The same clamp from inside a node-lane event: the reference clock is the
// lane's epoch clock (NOT some global "furthest lane" time), the clamped
// event stays on the caller's lane, and the transcript is identical at
// every thread count.
TEST(SimulatorTest, ScheduleAtPastClampOnLaneIsThreadCountInvariant) {
  auto run = [](int threads) {
    Simulator sim;
    DecisionDigest digest;
    sim.set_decision_digest(&digest);
    sim.ConfigureLanes(2, threads);
    SimTime fire = 0;
    int fire_lane = -99;
    sim.ScheduleOnLaneAt(1, 60, [&] {
      sim.ScheduleAt(20, [&] {  // past; clamps to lane 1's clock (60)
        fire = sim.Now();
        fire_lane = sim.current_lane();
      });
    });
    sim.RunAll();
    EXPECT_EQ(fire, 60u) << "threads=" << threads;
    EXPECT_EQ(fire_lane, 1) << "threads=" << threads;
    return digest.value();
  };

  DecisionDigest expected;
  expected.Mix(60);  // outer lane-1 event (tag 2), seq 0
  expected.Mix((uint64_t{2} << 40) ^ 0);
  expected.Mix(60);  // clamped event, same epoch, lane 1, seq 1
  expected.Mix((uint64_t{2} << 40) ^ 1);
  EXPECT_EQ(run(0), expected.value());
  EXPECT_EQ(run(2), expected.value());
}

}  // namespace
}  // namespace hermes::sim
