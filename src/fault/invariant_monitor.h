#ifndef HERMES_FAULT_INVARIANT_MONITOR_H_
#define HERMES_FAULT_INVARIANT_MONITOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/cluster.h"
#include "engine/replication.h"
#include "partition/partition_map.h"

namespace hermes::fault {

/// Checks the engine's safety invariants while (and after) faults are
/// injected. Every check appends a human-readable diagnostic to
/// failures() on violation and returns whether it passed, so a chaos test
/// can assert `monitor.ok()` once and print everything that went wrong.
///
/// All checks probe the dense key space 0..num_records-1 through the
/// deterministic store/executor accessors — no unordered iteration, so the
/// monitor itself cannot perturb or depend on hash order.
class InvariantMonitor {
 public:
  using MapFactory =
      std::function<std::unique_ptr<partition::PartitionMap>()>;

  explicit InvariantMonitor(uint64_t num_records)
      : num_records_(num_records) {}

  /// Record singularity: every key is present in exactly one node's store,
  /// or absent everywhere but registered in the executor's in-flight
  /// table. Callable at any instant, including mid-outage.
  bool CheckRecordSingularity(engine::Cluster& cluster,
                              const std::string& context);

  /// Quiescent completeness: nothing in flight and every key present
  /// exactly once. Call after Drain() — a missing key here is a lost
  /// record (e.g. a committed write discarded by a crash and never
  /// rebuilt).
  bool CheckNoLostRecords(engine::Cluster& cluster,
                          const std::string& context);

  /// Compares the live (chaos-perturbed) cluster against a fault-free
  /// oracle: a fresh cluster that Load()s and replays the live cluster's
  /// command log verbatim. Asserts (a) placement-digest equality — chaos
  /// may perturb event timing but never what the router decided for the
  /// sequenced batch stream — and (b) StateChecksum equality, which is the
  /// "no committed write lost, no phantom write invented" check: the log
  /// IS the database, so the live stores must match what pure replay
  /// produces. Call at quiescence (after Drain()).
  bool CheckAgainstOracle(engine::Cluster& live, engine::RouterKind kind,
                          const MapFactory& map_factory,
                          const std::string& context);

  /// Degraded-mode oracle (DESIGN.md §5 "Degraded mode"): like
  /// CheckAgainstOracle, but the replay is TOLD the live run's membership
  /// schedule (epoch-numbered crash/rejoin events and watchdog-abort
  /// records, all pure functions of the fault plan) so it drops the same
  /// blocked transactions, parks the same chunks, and flips the same
  /// user-aborts at the same batch boundaries. Asserts the post-epoch
  /// placement digest, the state checksum and the committed/aborted counts
  /// all match — i.e. no committed write was lost at any epoch boundary
  /// and degraded routing stayed a pure function of (plan, config). Call
  /// at quiescence after the final rejoin.
  bool CheckDegradedOracle(engine::Cluster& live, engine::RouterKind kind,
                           const MapFactory& map_factory,
                           const std::string& context);

  /// All live replicas hold bit-identical stores (call after Drain()).
  bool CheckReplicaChecksums(engine::ReplicaGroup& group,
                             const std::string& context);

  /// Replica-lease coherence (DESIGN.md §5 "Replica leases"): every copy
  /// the lease manager holds matches its primary record bit-for-bit
  /// (value and version). The primary is located through the same
  /// singularity probe the other checks use — stores first, then the
  /// executor's in-flight table. Call at quiescence; a quiesced copy that
  /// disagrees with its primary means a commit fan-out was lost,
  /// reordered past version-max, or applied to a lapsed lease.
  bool CheckReplicaCoherence(engine::Cluster& cluster,
                             const std::string& context);

  /// Partition oracle (DESIGN.md §5 "Partitions & failure detection").
  /// Call at quiescence after every cut healed. Asserts (a) every holding
  /// pen drained — a parked payload that never delivered is a lost
  /// message, (b) Network::cut_deliveries() == 0 — no payload crossed a
  /// cut while it was up, (c) no link is still cut; then replays the
  /// command log: against the degraded oracle when the run recorded
  /// membership transitions (the detector fired), else against the
  /// fault-free oracle (the cut stayed below the detection threshold, so
  /// routing must be chaos-invariant as usual).
  bool CheckPartitionOracle(engine::Cluster& live, engine::RouterKind kind,
                            const MapFactory& map_factory,
                            const std::string& context);

  /// Observability taps (strictly passive, satellite of DESIGN.md §5
  /// "Observability"): when attached, every Fail() also records a
  /// kInvariantViolation trace event and bumps the counter — so a chaos
  /// run's trace shows WHEN a check failed, not just that it did.
  void AttachTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  uint64_t violations() const { return violations_.value(); }

  bool ok() const { return failures_.empty(); }
  const std::vector<std::string>& failures() const { return failures_; }
  std::string FailureReport() const;

 private:
  void Fail(std::string message);

  uint64_t num_records_;
  std::vector<std::string> failures_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter violations_;
};

}  // namespace hermes::fault

#endif  // HERMES_FAULT_INVARIANT_MONITOR_H_
