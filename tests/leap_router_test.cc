#include "routing/leap_router.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"

namespace hermes::routing {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;

TxnRequest MakeTxn(TxnId id, std::vector<Key> reads, std::vector<Key> writes) {
  TxnRequest txn;
  txn.id = id;
  txn.read_set = std::move(reads);
  txn.write_set = std::move(writes);
  return txn;
}

Batch MakeBatch(std::vector<TxnRequest> txns) {
  Batch batch;
  batch.txns = std::move(txns);
  return batch;
}

class LeapRouterTest : public ::testing::Test {
 protected:
  LeapRouterTest()
      : ownership_(std::make_unique<RangePartitionMap>(100, 4)),
        router_(&ownership_, &costs_, 4) {}

  OwnershipMap ownership_;
  CostModel costs_;
  LeapRouter router_;
};

TEST_F(LeapRouterTest, MigratesAllAccessedRecordsToMaster) {
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  const RoutedTxn& rt = plan.txns[0];
  EXPECT_EQ(rt.masters, (std::vector<NodeId>{0}));
  for (const auto& acc : rt.accesses) {
    if (acc.key == 90) {
      EXPECT_EQ(acc.new_owner, 0);
      EXPECT_TRUE(acc.is_write);  // migration needs exclusivity
    }
  }
  // Unlike G-Store, the record stays: ownership updated, no returns.
  EXPECT_TRUE(rt.on_commit_returns.empty());
  EXPECT_EQ(ownership_.Owner(90), 0);
}

TEST_F(LeapRouterTest, TemporalLocalityMakesRepeatsLocal) {
  (void)router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  RoutePlan plan2 =
      router_.RouteBatch(MakeBatch({MakeTxn(2, {10, 11, 90}, {90})}));
  for (const auto& acc : plan2.txns[0].accesses) {
    EXPECT_FALSE(acc.ship_to_master);
    EXPECT_EQ(acc.new_owner, kInvalidNode);
  }
  EXPECT_EQ(router_.migrations(), 1u);
}

TEST_F(LeapRouterTest, PingPongWithoutReordering) {
  // The Fig. 3 pathology: alternating majorities bounce the shared record
  // back and forth because LEAP sees one transaction at a time.
  (void)router_.RouteBatch(MakeBatch({
      MakeTxn(1, {10, 11, 90}, {90}),  // 90 -> node 0
      MakeTxn(2, {80, 81, 90}, {90}),  // 90 -> node 3
      MakeTxn(3, {10, 11, 90}, {90}),  // 90 -> node 0 again
      MakeTxn(4, {80, 81, 90}, {90}),  // 90 -> node 3 again
  }));
  EXPECT_EQ(router_.migrations(), 4u);
}

TEST_F(LeapRouterTest, PileUpOnPopularNode) {
  // Once hot records fuse onto one node, LEAP keeps routing there — the
  // single-node bottleneck the paper observed.
  (void)router_.RouteBatch(MakeBatch({MakeTxn(1, {1, 2, 90}, {90})}));
  std::vector<TxnRequest> txns;
  for (TxnId i = 2; i < 12; ++i) txns.push_back(MakeTxn(i, {1, 2, 90}, {90}));
  RoutePlan plan = router_.RouteBatch(MakeBatch(std::move(txns)));
  for (const auto& rt : plan.txns) EXPECT_EQ(rt.masters[0], 0);
}

TEST_F(LeapRouterTest, MigrationBackHomeClearsOverlay) {
  (void)router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  ASSERT_EQ(ownership_.Owner(90), 0);
  // Majority now at node 3: record migrates home; overlay entry dropped.
  (void)router_.RouteBatch(MakeBatch({MakeTxn(2, {80, 81, 90}, {90})}));
  EXPECT_EQ(ownership_.Owner(90), 3);
  EXPECT_TRUE(ownership_.key_overlay().empty());
}

}  // namespace
}  // namespace hermes::routing
