#ifndef HERMES_SIM_WORKER_POOL_H_
#define HERMES_SIM_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace hermes::sim {

/// A pool of `w` executor workers on one simulated node. Jobs occupy one
/// worker for a given duration; excess jobs queue FIFO behind the earliest
/// finishing worker. Busy time is accumulated for the CPU-utilization
/// metric (Fig. 8).
class WorkerPool {
 public:
  /// `lane` is the simulator lane job completions fire on — the owning
  /// node's lane under partitioned execution (kControlLane, the default,
  /// keeps standalone pools on the exclusive queue).
  WorkerPool(Simulator* sim, int num_workers, int lane = kControlLane);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `duration` of CPU work, then `done`. Returns the simulated time
  /// at which the job will start (for queue-wait accounting).
  SimTime Submit(SimTime duration, std::function<void()> done);

  uint64_t busy_us() const { return busy_us_; }
  int num_workers() const { return static_cast<int>(busy_until_.size()); }

  /// Busy microseconds accumulated since the last call (for windowed
  /// utilization sampling).
  uint64_t TakeBusyDelta();

 private:
  Simulator* sim_;
  int lane_;
  std::vector<SimTime> busy_until_;
  uint64_t busy_us_ = 0;
  uint64_t last_sampled_busy_ = 0;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_WORKER_POOL_H_
