// Tests for deterministic replication (§2.1): standby replicas fed the
// primary's totally ordered batch stream converge to identical state, and
// failover promotes a standby without losing the total order.

#include <memory>

#include <gtest/gtest.h>

#include "engine/replication.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::ReplicaGroup;
using engine::RouterKind;

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 10'000;
  config.hermes.fusion_table_capacity = 500;
  return config;
}

ReplicaGroup::MapFactory RangeFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

TEST(ReplicationTest, StandbyConvergesToPrimaryState) {
  const ClusterConfig config = SmallConfig();
  ReplicaGroup group(config, RouterKind::kHermes, RangeFactory(config), 2);
  group.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 101;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &group.replica(0), 16,
      [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(1));
  driver.Start();
  group.RunUntil(SecToSim(1));
  group.Drain();

  EXPECT_GT(group.replica(0).metrics().total_commits(), 100u);
  // The standby executed the same stream...
  EXPECT_EQ(group.replica(1).metrics().total_commits(),
            group.replica(0).metrics().total_commits());
  // ...and holds bit-identical state.
  EXPECT_TRUE(group.ReplicasConsistent());
}

TEST(ReplicationTest, FailoverContinuesService) {
  const ClusterConfig config = SmallConfig();
  ReplicaGroup group(config, RouterKind::kHermes, RangeFactory(config), 2);
  group.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 103;
  workload::YcsbWorkload gen(wl, nullptr);

  // Phase 1 on the original primary.
  for (int i = 0; i < 50; ++i) group.Submit(gen.Next(0));
  group.RunUntil(MsToSim(300));
  group.Drain();

  const int new_primary = group.Failover();
  EXPECT_EQ(new_primary, 1);
  EXPECT_EQ(group.primary_index(), 1);

  // Phase 2 on the promoted standby: service continues.
  uint64_t committed = 0;
  for (int i = 0; i < 50; ++i) {
    group.Submit(gen.Next(group.replica(1).Now()),
                 [&committed](const engine::TxnResult&) { ++committed; });
  }
  group.RunUntil(group.replica(1).Now() + MsToSim(500));
  group.Drain();
  EXPECT_EQ(committed, 50u);
  EXPECT_EQ(group.replica(1).metrics().total_commits(), 100u);
}

TEST(ReplicationTest, ThreeReplicasAllConverge) {
  const ClusterConfig config = SmallConfig();
  ReplicaGroup group(config, RouterKind::kLeap, RangeFactory(config), 3);
  group.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 107;
  workload::YcsbWorkload gen(wl, nullptr);
  for (int i = 0; i < 200; ++i) group.Submit(gen.Next(0));
  group.RunUntil(SecToSim(1));
  group.Drain();

  EXPECT_TRUE(group.ReplicasConsistent());
  EXPECT_EQ(group.replica(2).metrics().total_commits(), 200u);
}

TEST(ReplicationTest, FailoverPreservesDataState) {
  const ClusterConfig config = SmallConfig();
  ReplicaGroup group(config, RouterKind::kHermes, RangeFactory(config), 2);
  group.Load();

  TxnRequest txn;
  txn.read_set = {1, 9999};
  txn.write_set = {1, 9999};
  group.Submit(txn);
  group.RunUntil(MsToSim(100));
  group.Drain();
  const uint64_t before = group.replica(0).StateChecksum();

  group.Failover();
  // The promoted replica holds exactly the failed primary's state.
  EXPECT_EQ(group.replica(1).StateChecksum(), before);
}

}  // namespace
}  // namespace hermes
