#ifndef HERMES_COMMON_MEMBERSHIP_H_
#define HERMES_COMMON_MEMBERSHIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hermes {

/// One membership transition, anchored to the command log: the change is
/// in effect for every batch with id >= from_batch. Because the fault
/// plan is a pure function of (config, seed) and batch ids are assigned
/// in total order, the whole schedule is deterministic and a replay fed
/// the same schedule reproduces every routing decision bit-for-bit.
struct MembershipEvent {
  BatchId from_batch = 0;
  NodeId node = kInvalidNode;
  bool alive = false;  ///< false = MarkDown, true = MarkUp
  uint32_t epoch = 0;  ///< membership epoch after applying this event
  /// Position in the merged event+abort stream. Several events and abort
  /// records can share one from_batch (a detector flap plus a watchdog
  /// sweep between two batch dispatches); replay must interleave the two
  /// streams exactly as they happened — a rejoin clears the stranded set,
  /// so an abort stranding keys before vs after it is observable.
  uint64_t seq = 0;
};

/// A watchdog abort recorded against the log: txn (already ordered in
/// some batch before from_batch) was UNDO-aborted while node(s) were
/// down, and `stranded` keys were left physically at a dead node even
/// though ownership says otherwise. Replay flips the txn to a §4.2
/// user-abort and strands the same keys, keeping placement digests and
/// state checksums aligned.
struct AbortRecord {
  BatchId from_batch = 0;
  TxnId txn = kInvalidTxn;
  std::vector<Key> stranded;  ///< sorted
  uint64_t seq = 0;           ///< merged-stream position (see MembershipEvent)
};

/// Everything a replay needs to reproduce a degraded-mode run: the
/// membership transitions and the watchdog abort decisions, both in
/// log order.
struct DegradedSchedule {
  std::vector<MembershipEvent> events;
  std::vector<AbortRecord> aborts;

  bool empty() const { return events.empty() && aborts.empty(); }
};

/// Epoch-numbered liveness view fed to the routers. Nodes default to
/// alive (including nodes added later by provisioning markers); MarkDown
/// and MarkUp bump the epoch so candidate-set caches can invalidate.
/// Pure bookkeeping: every mutation is driven by the fault plan (live)
/// or the recorded schedule (replay), never by wall clock or hash order.
class MembershipView {
 public:
  bool alive(NodeId node) const {
    const size_t i = static_cast<size_t>(node);
    return i >= down_.size() || !down_[i];
  }
  bool any_down() const { return down_count_ > 0; }
  int down_count() const { return down_count_; }
  uint32_t epoch() const { return epoch_; }

  void MarkDown(NodeId node) {
    const size_t i = static_cast<size_t>(node);
    if (i >= down_.size()) down_.resize(i + 1, 0);
    if (down_[i]) return;
    down_[i] = 1;
    ++down_count_;
    ++epoch_;
  }

  void MarkUp(NodeId node) {
    const size_t i = static_cast<size_t>(node);
    if (i >= down_.size() || !down_[i]) return;
    down_[i] = 0;
    --down_count_;
    ++epoch_;
  }

  std::string DebugString() const;

 private:
  std::vector<uint8_t> down_;  ///< indexed by NodeId; absent = alive
  int down_count_ = 0;
  uint32_t epoch_ = 0;
};

}  // namespace hermes

#endif  // HERMES_COMMON_MEMBERSHIP_H_
