// FaultPlan generation: seeded, totally ordered, structurally valid
// schedules — the foundation the chaos tests build on.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/link_chaos.h"

namespace hermes::fault {
namespace {

FaultPlanConfig BaseConfig() {
  FaultPlanConfig config;
  config.horizon_us = SecToSim(2);
  config.num_nodes = 4;
  config.crash_cycles = 3;
  config.min_outage_us = MsToSim(20);
  config.max_outage_us = MsToSim(200);
  return config;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  const FaultPlanConfig config = BaseConfig();
  const FaultPlan a = FaultPlan::Generate(config, 42);
  const FaultPlan b = FaultPlan::Generate(config, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
  }
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  const FaultPlanConfig config = BaseConfig();
  const FaultPlan a = FaultPlan::Generate(config, 1);
  const FaultPlan b = FaultPlan::Generate(config, 2);
  bool differ = a.events.size() != b.events.size();
  for (size_t i = 0; !differ && i < a.events.size(); ++i) {
    differ = a.events[i].at != b.events[i].at ||
             a.events[i].node != b.events[i].node;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultPlanTest, EventsSortedAndPaired) {
  const FaultPlanConfig config = BaseConfig();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    EXPECT_EQ(plan.events.size(), 2u * config.crash_cycles);
    NodeId down = kInvalidNode;
    SimTime prev = 0;
    for (const FaultEvent& e : plan.events) {
      EXPECT_GE(e.at, prev) << "events out of order, seed " << seed;
      prev = e.at;
      EXPECT_LT(e.at, config.horizon_us);
      EXPECT_GE(e.node, 0);
      EXPECT_LT(e.node, config.num_nodes);
      if (e.kind == FaultEvent::Kind::kCrash) {
        EXPECT_EQ(down, kInvalidNode) << "overlapping outages, seed " << seed;
        down = e.node;
      } else {
        ASSERT_EQ(e.kind, FaultEvent::Kind::kRejoin);
        EXPECT_EQ(down, e.node) << "rejoin without crash, seed " << seed;
        down = kInvalidNode;
      }
    }
    EXPECT_EQ(down, kInvalidNode) << "crash never rejoined, seed " << seed;
  }
}

TEST(FaultPlanTest, OutageBoundsRespected) {
  const FaultPlanConfig config = BaseConfig();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    for (size_t i = 0; i + 1 < plan.events.size(); i += 2) {
      const SimTime outage = plan.events[i + 1].at - plan.events[i].at;
      EXPECT_GE(outage, config.min_outage_us);
      EXPECT_LE(outage, config.max_outage_us);
    }
  }
}

TEST(FaultPlanTest, NoStallPlansEmitCrashNoStallEvents) {
  FaultPlanConfig config = BaseConfig();
  config.no_stall = true;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    EXPECT_EQ(plan.events.size(), 2u * config.crash_cycles);
    NodeId down = kInvalidNode;
    for (const FaultEvent& e : plan.events) {
      EXPECT_NE(e.kind, FaultEvent::Kind::kCrash)
          << "a no-stall plan drew a stalling crash, seed " << seed;
      if (e.kind == FaultEvent::Kind::kCrashNoStall) {
        EXPECT_EQ(down, kInvalidNode) << "overlapping outages, seed " << seed;
        down = e.node;
      } else {
        ASSERT_EQ(e.kind, FaultEvent::Kind::kRejoin);
        EXPECT_EQ(down, e.node) << "rejoin without crash, seed " << seed;
        down = kInvalidNode;
      }
    }
    EXPECT_EQ(down, kInvalidNode) << "crash never rejoined, seed " << seed;
  }
}

TEST(FaultPlanTest, NoStallFlagOnlyChangesEventKinds) {
  // Same seed, same draws: the no-stall flag swaps the crash kind but
  // must not perturb the schedule itself.
  FaultPlanConfig stall = BaseConfig();
  FaultPlanConfig no_stall = BaseConfig();
  no_stall.no_stall = true;
  const FaultPlan a = FaultPlan::Generate(stall, 42);
  const FaultPlan b = FaultPlan::Generate(no_stall, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    if (a.events[i].kind == FaultEvent::Kind::kCrash) {
      EXPECT_EQ(b.events[i].kind, FaultEvent::Kind::kCrashNoStall);
    } else {
      EXPECT_EQ(b.events[i].kind, a.events[i].kind);
    }
  }
  EXPECT_NE(b.DebugString().find("crash-nostall"), std::string::npos)
      << b.DebugString();
}

TEST(FaultPlanTest, FailoverLandsMidRun) {
  FaultPlanConfig config = BaseConfig();
  config.crash_cycles = 0;
  config.inject_failover = true;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kFailover);
    EXPECT_GE(plan.events[0].at, config.horizon_us / 5);
    EXPECT_LT(plan.events[0].at, 4 * config.horizon_us / 5);
  }
}

TEST(FaultPlanTest, LinkConfigCarriedThrough) {
  FaultPlanConfig config = BaseConfig();
  config.link.drop_prob = 0.05;
  config.link.duplicate_prob = 0.02;
  config.link.max_jitter_us = 123;
  const FaultPlan plan = FaultPlan::Generate(config, 9);
  EXPECT_DOUBLE_EQ(plan.link.drop_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.link.duplicate_prob, 0.02);
  EXPECT_EQ(plan.link.max_jitter_us, 123u);
  EXPECT_FALSE(plan.DebugString().empty());
}

// --- Partition generation. ---

FaultPlanConfig PartitionConfig() {
  FaultPlanConfig config = BaseConfig();
  config.no_stall = true;
  config.crash_cycles = 2;
  config.partition_cycles = 2;
  config.min_partition_us = MsToSim(20);
  config.max_partition_us = MsToSim(200);
  config.one_way_fraction = 0.5;
  return config;
}

TEST(FaultPlanTest, PartitionEventsSortedPairedAndBounded) {
  const FaultPlanConfig config = PartitionConfig();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    SimTime prev = 0;
    NodeId cut = kInvalidNode;
    SimTime cut_at = 0;
    PartitionMode cut_mode = PartitionMode::kTwoSided;
    size_t pairs = 0;
    for (const FaultEvent& e : plan.events) {
      EXPECT_GE(e.at, prev) << "events out of order, seed " << seed;
      prev = e.at;
      EXPECT_LT(e.at, config.horizon_us);
      if (e.kind == FaultEvent::Kind::kPartitionStart) {
        EXPECT_EQ(cut, kInvalidNode) << "overlapping cuts, seed " << seed;
        EXPECT_GE(e.node, 0);
        EXPECT_LT(e.node, config.num_nodes);
        cut = e.node;
        cut_at = e.at;
        cut_mode = e.mode;
      } else if (e.kind == FaultEvent::Kind::kPartitionHeal) {
        EXPECT_EQ(cut, e.node) << "heal without cut, seed " << seed;
        EXPECT_EQ(cut_mode, e.mode) << "heal mode mismatch, seed " << seed;
        const SimTime duration = e.at - cut_at;
        EXPECT_GE(duration, config.min_partition_us) << "seed " << seed;
        EXPECT_LE(duration, config.max_partition_us) << "seed " << seed;
        cut = kInvalidNode;
        ++pairs;
      }
    }
    EXPECT_EQ(cut, kInvalidNode) << "cut never healed, seed " << seed;
    EXPECT_EQ(pairs, static_cast<size_t>(config.partition_cycles));
  }
}

TEST(FaultPlanTest, PartitionVictimsDisjointFromCrashVictims) {
  // The detector marks partition victims down via the same membership path
  // kCrashNoStall uses, and a node must never be marked down twice.
  const FaultPlanConfig config = PartitionConfig();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    std::set<NodeId> crashed;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultEvent::Kind::kCrashNoStall) crashed.insert(e.node);
    }
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultEvent::Kind::kPartitionStart) {
        EXPECT_EQ(crashed.count(e.node), 0u)
            << "node " << e.node << " both crashed and partitioned, seed "
            << seed;
      }
    }
  }
}

TEST(FaultPlanTest, OneWayFractionExtremes) {
  FaultPlanConfig config = PartitionConfig();
  config.crash_cycles = 0;
  config.one_way_fraction = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    for (const FaultEvent& e : FaultPlan::Generate(config, seed).events) {
      EXPECT_EQ(e.mode, PartitionMode::kTwoSided);
    }
  }
  config.one_way_fraction = 1.0;
  bool saw_inbound = false, saw_outbound = false;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    for (const FaultEvent& e : FaultPlan::Generate(config, seed).events) {
      EXPECT_NE(e.mode, PartitionMode::kTwoSided) << "seed " << seed;
      saw_inbound = saw_inbound || e.mode == PartitionMode::kInbound;
      saw_outbound = saw_outbound || e.mode == PartitionMode::kOutbound;
    }
  }
  EXPECT_TRUE(saw_inbound);
  EXPECT_TRUE(saw_outbound);
}

TEST(FaultPlanTest, PartitionKnobsDoNotPerturbCrashSchedule) {
  // Partition and gray draws are appended AFTER the crash draws, so adding
  // them must leave the crash/rejoin schedule bit-identical.
  FaultPlanConfig base = BaseConfig();
  base.no_stall = true;
  FaultPlanConfig extended = base;
  extended.partition_cycles = 2;
  extended.gray = true;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan a = FaultPlan::Generate(base, seed);
    const FaultPlan b = FaultPlan::Generate(extended, seed);
    std::vector<FaultEvent> crashes;
    for (const FaultEvent& e : b.events) {
      if (e.kind == FaultEvent::Kind::kCrashNoStall ||
          e.kind == FaultEvent::Kind::kRejoin) {
        crashes.push_back(e);
      }
    }
    ASSERT_EQ(crashes.size(), a.events.size()) << "seed " << seed;
    for (size_t i = 0; i < crashes.size(); ++i) {
      EXPECT_EQ(crashes[i].at, a.events[i].at) << "seed " << seed;
      EXPECT_EQ(crashes[i].kind, a.events[i].kind) << "seed " << seed;
      EXPECT_EQ(crashes[i].node, a.events[i].node) << "seed " << seed;
    }
  }
}

TEST(FaultPlanTest, GrayWindowSeededValidAndAvoidsCrashVictims) {
  FaultPlanConfig config = PartitionConfig();
  config.partition_cycles = 0;
  config.gray = true;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    ASSERT_TRUE(plan.link.has_gray()) << "seed " << seed;
    EXPECT_GT(plan.link.gray_until_us, plan.link.gray_from_us);
    EXPECT_LE(plan.link.gray_until_us, config.horizon_us);
    EXPECT_GE(plan.link.gray_node, 0);
    EXPECT_LT(plan.link.gray_node, config.num_nodes);
    EXPECT_DOUBLE_EQ(plan.link.gray_drop_prob, config.gray_drop_prob);
    EXPECT_EQ(plan.link.gray_extra_delay_us, config.gray_extra_delay_us);
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultEvent::Kind::kCrashNoStall) {
        EXPECT_NE(e.node, plan.link.gray_node) << "seed " << seed;
      }
    }
    EXPECT_NE(plan.DebugString().find("gray node="), std::string::npos);
    // Same seed, same window.
    const FaultPlan again = FaultPlan::Generate(config, seed);
    EXPECT_EQ(again.link.gray_from_us, plan.link.gray_from_us);
    EXPECT_EQ(again.link.gray_until_us, plan.link.gray_until_us);
    EXPECT_EQ(again.link.gray_node, plan.link.gray_node);
  }
}

// --- LinkChaos boundary behavior (satellite: drop/jitter/purity). ---

TEST(LinkChaosTest, CertainDropIsBoundedByMaxDropsPerMessage) {
  LinkChaosConfig config;
  config.drop_prob = 1.0;
  config.max_drops_per_message = 3;
  config.retransmit_delay_us = 200;
  const LinkChaos chaos(config, 7);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    const sim::Perturbation p = chaos.Draw(0, 1, seq);
    EXPECT_EQ(p.dropped_attempts, 3) << "seq " << seq;
    EXPECT_EQ(p.extra_delay_us, 3u * 200u) << "seq " << seq;
  }
}

TEST(LinkChaosTest, ZeroProbZeroJitterDrawsNothing) {
  const LinkChaos chaos(LinkChaosConfig{}, 7);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    const sim::Perturbation p = chaos.Draw(0, 1, seq, /*now=*/seq * 1000);
    EXPECT_EQ(p.dropped_attempts, 0);
    EXPECT_EQ(p.duplicates, 0);
    EXPECT_EQ(p.extra_delay_us, 0u);
  }
}

TEST(LinkChaosTest, DrawsArePureFunctionsOfLinkAndSeq) {
  LinkChaosConfig config;
  config.drop_prob = 0.5;
  config.duplicate_prob = 0.3;
  config.max_jitter_us = 500;
  const LinkChaos a(config, 99);
  const LinkChaos b(config, 99);
  // Interleave calls on other links between the two instances: the draw
  // for (src, dst, seq) must not depend on call order or other links.
  bool links_differ = false;
  for (uint64_t seq = 0; seq < 64; ++seq) {
    const sim::Perturbation pa = a.Draw(0, 1, seq);
    (void)b.Draw(2, 3, seq);
    (void)b.Draw(1, 0, 63 - seq);
    const sim::Perturbation pb = b.Draw(0, 1, seq);
    EXPECT_EQ(pa.dropped_attempts, pb.dropped_attempts) << "seq " << seq;
    EXPECT_EQ(pa.duplicates, pb.duplicates) << "seq " << seq;
    EXPECT_EQ(pa.extra_delay_us, pb.extra_delay_us) << "seq " << seq;
    const sim::Perturbation reverse = a.Draw(1, 0, seq);
    links_differ = links_differ ||
                   reverse.extra_delay_us != pa.extra_delay_us ||
                   reverse.dropped_attempts != pa.dropped_attempts;
  }
  EXPECT_TRUE(links_differ) << "directed links share a draw stream";
}

TEST(LinkChaosTest, GrayWindowGatesExtraDelayAndStaysBounded) {
  LinkChaosConfig config;
  config.gray_from_us = 1000;
  config.gray_until_us = 2000;
  config.gray_node = 1;
  config.gray_extra_delay_us = 400;
  config.gray_drop_prob = 1.0;  // certain extra drops, still bounded
  config.max_drops_per_message = 3;
  config.retransmit_delay_us = 200;
  const LinkChaos chaos(config, 7);

  // Inside the window, on a victim link: flat extra delay + bounded drops.
  const sim::Perturbation in = chaos.Draw(0, 1, 0, /*now=*/1500);
  EXPECT_EQ(in.dropped_attempts, 3);
  EXPECT_EQ(in.extra_delay_us, 3u * 200u + 400u);
  // Victim as sender is just as sick.
  EXPECT_EQ(chaos.Draw(1, 2, 0, 1500).extra_delay_us, 3u * 200u + 400u);
  // Outside the window (before, at the half-open end) or away from the
  // victim: clean.
  EXPECT_EQ(chaos.Draw(0, 1, 0, 999).extra_delay_us, 0u);
  EXPECT_EQ(chaos.Draw(0, 1, 0, 2000).extra_delay_us, 0u);
  EXPECT_EQ(chaos.Draw(0, 2, 0, 1500).extra_delay_us, 0u);
}

TEST(LinkChaosTest, HeartbeatDropsAreWindowGatedAndPure) {
  LinkChaosConfig config;
  config.gray_from_us = 1000;
  config.gray_until_us = 2000;
  config.gray_node = 1;
  config.gray_heartbeat_drop_prob = 1.0;
  const LinkChaos chaos(config, 7);
  EXPECT_TRUE(chaos.HeartbeatDropped(0, 1, 5, 1500));
  EXPECT_TRUE(chaos.HeartbeatDropped(1, 0, 5, 1500));
  EXPECT_FALSE(chaos.HeartbeatDropped(0, 2, 5, 1500)) << "non-victim link";
  EXPECT_FALSE(chaos.HeartbeatDropped(0, 1, 5, 999)) << "before the window";
  EXPECT_FALSE(chaos.HeartbeatDropped(0, 1, 5, 2000)) << "half-open end";

  config.gray_heartbeat_drop_prob = 0.6;
  const LinkChaos a(config, 123);
  const LinkChaos b(config, 123);
  bool saw_drop = false, saw_pass = false;
  for (uint64_t tick = 0; tick < 64; ++tick) {
    const bool dropped = a.HeartbeatDropped(0, 1, tick, 1500);
    EXPECT_EQ(dropped, b.HeartbeatDropped(0, 1, tick, 1500))
        << "tick " << tick;
    saw_drop = saw_drop || dropped;
    saw_pass = saw_pass || !dropped;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_pass);
}

}  // namespace
}  // namespace hermes::fault
