#include "net/wire.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/config.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hermes::net {
namespace {

// Shared fixture pieces: latency 100us, 1ns/byte, no framing overhead so
// wire bytes == payload bytes and the arithmetic below stays readable.
struct Rig {
  Rig() {
    costs.net_latency_us = 100;
    costs.net_us_per_byte = 0.001;
    costs.message_overhead_bytes = 0;
    config.enabled = true;
    config.coalesce_window_us = 0;  // coalescing off unless a test opts in
  }
  sim::Simulator sim;
  CostModel costs;
  NetConfig config;
};

TEST(WireTest, DisabledIsAPassthrough) {
  Rig rig;
  rig.config.enabled = false;
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  SimTime delivered = 0;
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { delivered = rig.sim.Now(); });
  rig.sim.RunAll();
  // Identical to a direct Network::Send: latency + bytes * us_per_byte.
  EXPECT_EQ(delivered, 100u + 10u);
  EXPECT_EQ(wire.transmits(TrafficClass::kForeground), 0u)
      << "disabled substrate must not touch its queues";
}

TEST(WireTest, SerializerQueuesBackToBackMessages) {
  Rig rig;
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  SimTime first = 0, second = 0;
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { first = rig.sim.Now(); });
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { second = rig.sim.Now(); });
  rig.sim.RunAll();
  // First transmits at t=0 (serialization 10us), second waits for the
  // serializer: delivery = queueing(10) + serialization(10) + latency.
  EXPECT_EQ(first, 110u);
  EXPECT_EQ(second, 120u);
  EXPECT_EQ(wire.transmits(TrafficClass::kForeground), 2u);
  const DelayHistogram h = wire.MergedQueueDelay(TrafficClass::kForeground);
  EXPECT_EQ(h.count(), 2u);
}

TEST(WireTest, RateOverrideChangesOccupancyOnly) {
  Rig rig;
  rig.config.bytes_per_us = 500;  // 2ns/byte NIC on a 1ns/byte wire
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  SimTime first = 0, second = 0;
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { first = rig.sim.Now(); });
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { second = rig.sim.Now(); });
  rig.sim.RunAll();
  // Per-message wire time is unchanged (the fabric still charges
  // 1ns/byte); only the serializer occupancy doubles to 20us.
  EXPECT_EQ(first, 110u);
  EXPECT_EQ(second, 130u);
}

TEST(WireTest, WeightedScheduleServesForegroundBeforeQueuedBulk) {
  Rig rig;  // defaults: fg_weight 4, bulk_weight 1
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  std::vector<int> order;
  // Occupy the serializer, then queue bulk BEFORE foreground.
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { order.push_back(1); });
  wire.Send(0, 1, 1'000, TrafficClass::kBulk, [&] { order.push_back(2); });
  wire.Send(0, 1, 1'000, TrafficClass::kForeground,
            [&] { order.push_back(3); });
  rig.sim.RunAll();
  // Slot 1 of the 4:1 cycle prefers foreground, so the later foreground
  // message overtakes the FIFO-earlier bulk one.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(wire.transmits(TrafficClass::kBulk), 1u);
}

TEST(WireTest, CreditWindowStallsUntilDeliveryReturnsCredit) {
  Rig rig;
  rig.config.link_credit_bytes = 10'000;  // exactly one message in flight
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  SimTime first = 0, second = 0;
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { first = rig.sim.Now(); });
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { second = rig.sim.Now(); });
  rig.sim.RunAll();
  EXPECT_EQ(first, 110u);
  // The second message could not transmit at t=10 (window full): it waits
  // for the first delivery's credit return at t=110, then serializes and
  // flies: 110 + 10 + 100.
  EXPECT_EQ(second, 220u);
  EXPECT_GE(wire.credit_stalls(), 1u);
}

TEST(WireTest, OversizedMessageAdmittedWhenLinkIdle) {
  Rig rig;
  rig.config.link_credit_bytes = 1'000;  // smaller than the message
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  SimTime delivered = 0;
  wire.Send(0, 1, 10'000, TrafficClass::kForeground,
            [&] { delivered = rig.sim.Now(); });
  rig.sim.RunAll();
  EXPECT_EQ(delivered, 110u) << "an idle link must always admit";
}

TEST(WireTest, BulkCoalescesIntoOneEnvelopeOpenedInAppendOrder) {
  Rig rig;
  rig.config.coalesce_window_us = 50;
  rig.config.coalesce_max_bytes = 0;  // no size cap
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  std::vector<int> order;
  std::vector<SimTime> at;
  for (int i = 1; i <= 3; ++i) {
    wire.Send(0, 1, 100, TrafficClass::kBulk, [&, i] {
      order.push_back(i);
      at.push_back(rig.sim.Now());
    });
  }
  rig.sim.RunAll();
  // One wire message carries all three payloads: sealed at the window
  // (t=50), zero serialization (300 bytes), latency 100.
  EXPECT_EQ(net.total_messages(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(at, (std::vector<SimTime>{150, 150, 150}));
  EXPECT_EQ(wire.envelopes_sent(), 1u);
  EXPECT_EQ(wire.coalesced_messages(), 3u);
}

TEST(WireTest, EnvelopeSizeCapSealsEarly) {
  Rig rig;
  rig.config.coalesce_window_us = 50;
  rig.config.coalesce_max_bytes = 150;
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);

  std::vector<SimTime> at;
  for (int i = 0; i < 3; ++i) {
    wire.Send(0, 1, 100, TrafficClass::kBulk,
              [&] { at.push_back(rig.sim.Now()); });
  }
  rig.sim.RunAll();
  // The second append hits the cap: envelope 1 (two payloads) seals and
  // transmits at t=0, envelope 2 (one payload) waits out its window.
  EXPECT_EQ(wire.envelopes_sent(), 2u);
  EXPECT_EQ(wire.coalesced_messages(), 3u);
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 100u);
  EXPECT_EQ(at[1], 100u);
  EXPECT_EQ(at[2], 150u);
}

TEST(WireTest, SelfSendBypassesTheQueue) {
  Rig rig;
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);
  bool delivered = false;
  wire.Send(1, 1, 5'000, TrafficClass::kBulk, [&] { delivered = true; });
  EXPECT_FALSE(delivered) << "still asynchronous";
  rig.sim.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(wire.transmits(TrafficClass::kBulk), 0u);
}

TEST(WireTest, GrowLinksAddsNodesWithoutDisturbingCounters) {
  Rig rig;
  sim::Network net(&rig.sim, &rig.costs, 2);
  Wire wire(&rig.sim, &net, &rig.costs, &rig.config, 2);
  wire.Send(0, 1, 1'000, TrafficClass::kForeground, [] {});
  rig.sim.RunAll();
  net.EnsureCapacity(4);
  wire.GrowLinks(4);
  SimTime delivered = 0;
  wire.Send(3, 0, 1'000, TrafficClass::kForeground,
            [&] { delivered = rig.sim.Now(); });
  rig.sim.RunAll();
  EXPECT_EQ(wire.transmits(TrafficClass::kForeground), 2u);
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace hermes::net
