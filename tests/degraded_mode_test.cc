// Degraded-mode (kCrashNoStall) tests: the cluster keeps sequencing while
// a node is down — new batches route around it, blocked transactions are
// deterministically retried or parked, frozen ones are watchdog-aborted —
// and after the final rejoin a replay told the same membership schedule
// reproduces the same placements, state and commit/abort counts.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "migration/provisioning.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;
using fault::InvariantMonitor;

ClusterConfig DegradedClusterConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 8'000;
  config.hermes.fusion_table_capacity = 300;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

FaultPlan NoStallPlan(const ClusterConfig& config, uint64_t seed) {
  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(300);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(30);
  pc.max_outage_us = MsToSim(80);
  pc.no_stall = true;
  return FaultPlan::Generate(pc, seed);
}

TEST(DegradedModeTest, ClusterStaysAvailableDuringNoStallOutage) {
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  const FaultPlan plan = NoStallPlan(config, 7);
  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 1234;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(300));
  driver.Start();

  const SimTime crash_at = plan.events[0].at;
  injector.RunUntil(crash_at + MsToSim(1));
  // Mid-outage: intake never paused, membership knows who is down.
  ASSERT_FALSE(cluster.intake_paused());
  ASSERT_TRUE(cluster.membership().any_down());
  const uint64_t commits_mid_outage = cluster.metrics().total_commits();

  injector.RunUntil(crash_at + MsToSim(20));
  // The surviving nodes kept committing while the victim was down.
  EXPECT_GT(cluster.metrics().total_commits(), commits_mid_outage);
  ASSERT_FALSE(cluster.intake_paused());

  injector.RunUntil(MsToSim(300));
  injector.Drain();

  ASSERT_EQ(injector.recoveries().size(), 1u);
  const fault::RecoveryStats& rec = injector.recoveries()[0];
  EXPECT_TRUE(rec.no_stall);
  EXPECT_EQ(rec.stall_us(), 0u) << "degraded mode must not stall intake";
  EXPECT_GT(rec.time_to_recover_us(), 0u);
  EXPECT_GT(rec.replayed_batches, 0u);
  EXPECT_FALSE(cluster.membership().any_down());
  EXPECT_EQ(cluster.parked_count(), 0u);

  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "final"));
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "final"));
  // injector.Drain() already ran the degraded oracle; run it again
  // explicitly so a failure points here.
  EXPECT_TRUE(monitor.CheckDegradedOracle(cluster, RouterKind::kHermes,
                                          MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

TEST(DegradedModeTest, BlockedTransactionsRetryThenCommitAfterRejoin) {
  // Every submission eventually resolves: blocked ones either commit via
  // a deterministic retry or come back as an UNAVAILABLE abort — nothing
  // hangs and nothing is silently dropped.
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  cluster.CrashNoStall(2);
  uint64_t resolved = 0, aborted = 0;
  // Node 2 owns [4000, 6000) under the range map: these hit the outage.
  for (int i = 0; i < 10; ++i) {
    TxnRequest txn;
    txn.write_set = {static_cast<Key>(4000 + i)};
    cluster.Submit(txn, [&](const engine::TxnResult& r) {
      ++resolved;
      if (r.aborted) ++aborted;
    });
  }
  cluster.RunUntil(MsToSim(60));  // outage outlives every retry slot
  EXPECT_GT(cluster.degraded_ledger().retries_scheduled(), 0u);
  EXPECT_EQ(cluster.degraded_ledger().unavailable_aborts(), 10u)
      << cluster.DegradedDebugString();
  EXPECT_EQ(resolved, 10u);
  EXPECT_EQ(aborted, 10u);

  // A short second wave rejoins before the retries exhaust: they commit.
  cluster.RejoinNoStall(2);
  cluster.RunUntil(MsToSim(62));
  cluster.CrashNoStall(2);
  resolved = aborted = 0;
  for (int i = 0; i < 10; ++i) {
    TxnRequest txn;
    txn.write_set = {static_cast<Key>(4100 + i)};
    cluster.Submit(txn, [&](const engine::TxnResult& r) {
      ++resolved;
      if (r.aborted) ++aborted;
    });
  }
  cluster.RunUntil(MsToSim(65));
  cluster.RejoinNoStall(2);
  cluster.Drain();
  EXPECT_EQ(resolved, 10u);
  EXPECT_EQ(aborted, 0u) << cluster.DegradedDebugString();

  InvariantMonitor monitor(config.num_records);
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "final"));
  EXPECT_TRUE(monitor.CheckDegradedOracle(cluster, RouterKind::kHermes,
                                          MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

TEST(DegradedModeTest, ChunkMigrationTowardDeadNodeParksUntilRejoin) {
  // A consolidation is cut short by a crash: chunks whose target (or
  // source range) is down park in FIFO order and resume at rejoin; the
  // drain still completes and every record lands where ownership says.
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  cluster.CrashNoStall(1);
  // Chunks toward the dead node: classified blocked pre-routing, parked.
  cluster.SubmitMigrationPlan({{100, 899, 1}});
  cluster.RunUntil(MsToSim(20));
  EXPECT_GT(cluster.parked_count(), 0u) << cluster.DegradedDebugString();
  EXPECT_GT(cluster.degraded_ledger().parked_total(), 0u);
  const std::string debug = cluster.DegradedDebugString();
  EXPECT_NE(debug.find("parked txn="), std::string::npos) << debug;
  EXPECT_NE(debug.find("membership epoch="), std::string::npos) << debug;

  cluster.RejoinNoStall(1);
  cluster.Drain();
  EXPECT_EQ(cluster.parked_count(), 0u);
  for (Key k = 100; k <= 899; ++k) {
    ASSERT_TRUE(cluster.node(1).store().Contains(k))
        << "chunk key " << k << " never reached its migration target";
  }

  InvariantMonitor monitor(config.num_records);
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "final"));
  EXPECT_TRUE(monitor.CheckDegradedOracle(cluster, RouterKind::kHermes,
                                          MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

TEST(DegradedModeTest, CrashMidConsolidationParksRemainingChunks) {
  // The inverse interleaving: the consolidation starts first, the crash
  // lands while its chunk stream is mid-flight (satellite: chaos plans
  // with crash mid-consolidation — this is the deterministic unit case).
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 77;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 8, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(120));
  driver.Start();

  cluster.RunUntil(MsToSim(10));
  const auto plan = migration::PlanDrainNode(
      cluster.ownership(), config.num_records, /*leaving=*/3, {0, 1, 2});
  cluster.RemoveNode(3, plan, /*migrate_cold=*/true);
  cluster.RunUntil(MsToSim(12));
  cluster.CrashNoStall(0);  // a chunk target dies mid-stream
  cluster.RunUntil(MsToSim(60));
  cluster.RejoinNoStall(0);
  cluster.RunUntil(MsToSim(120));
  cluster.Drain();

  // The consolidation finished despite the outage.
  EXPECT_EQ(cluster.node(3).store().size(), 0u);
  EXPECT_EQ(cluster.parked_count(), 0u) << cluster.DegradedDebugString();

  InvariantMonitor monitor(config.num_records);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "final"));
  EXPECT_TRUE(monitor.CheckDegradedOracle(cluster, RouterKind::kHermes,
                                          MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

TEST(DegradedModeTest, InFlightRecordTowardVictimIsReclaimed) {
  // A record extracted toward the victim before the crash is suppressed
  // on delivery and reclaimed by the source after the deterministic
  // timeout — record singularity holds throughout.
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 808;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(150));
  driver.Start();

  // Step until a record is mid-wire, then kill its destination.
  NodeId victim = kInvalidNode;
  for (SimTime t = 100; t <= MsToSim(100) && victim == kInvalidNode;
       t += 100) {
    cluster.RunUntil(t);
    if (cluster.executor().inflight_records().empty()) continue;
    victim = cluster.executor().inflight_records().begin()->second.to;
  }
  ASSERT_NE(victim, kInvalidNode) << "no record was ever mid-wire";
  cluster.CrashNoStall(victim);

  InvariantMonitor monitor(config.num_records);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "mid-outage"));
  cluster.RunUntil(cluster.Now() +
                   config.degraded.reclaim_timeout_us * 4);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "post-reclaim"));

  cluster.RejoinNoStall(victim);
  cluster.RunUntil(MsToSim(150));
  cluster.Drain();
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "final"));
  EXPECT_TRUE(monitor.CheckDegradedOracle(cluster, RouterKind::kHermes,
                                          MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

struct DegradedOutcome {
  uint64_t retry_digest = 0;
  uint64_t transcript_len = 0;
  uint64_t parked_total = 0;
  uint64_t watchdog_aborts = 0;
  uint64_t placement = 0;
  uint64_t checksum = 0;
  uint64_t commits = 0;
  std::string report;
  bool ok = true;
};

DegradedOutcome RunDegraded(uint64_t seed) {
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  const FaultPlan plan = NoStallPlan(config, seed);
  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = Mix64(seed ^ 0xdeadULL);
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 10, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(300));
  driver.Start();

  injector.RunUntil(MsToSim(300));
  injector.Drain();

  DegradedOutcome out;
  out.retry_digest = cluster.degraded_ledger().RetryDigest();
  out.transcript_len = cluster.degraded_ledger().transcript().size();
  out.parked_total = cluster.degraded_ledger().parked_total();
  out.watchdog_aborts = cluster.degraded_ledger().watchdog_aborts();
  out.placement = cluster.placement_digest().value();
  out.checksum = cluster.StateChecksum();
  out.commits = cluster.metrics().total_commits();
  out.ok = monitor.ok();
  out.report = monitor.FailureReport();
  return out;
}

TEST(DegradedModeTest, RetryTranscriptIsIdenticalAcrossHashSalts) {
  // The whole degraded outcome — who was blocked, in which epoch, with
  // which backoff, plus the final placements and state — must be a pure
  // function of (workload seed, plan seed, config), never of hash order.
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = {HashSalt(), 0x9e3779b97f4a7c15ULL,
                                       0xdeadbeefcafef00dULL};
  std::vector<DegradedOutcome> outcomes;
  for (uint64_t salt : salts) {
    SetHashSalt(salt);
    outcomes.push_back(RunDegraded(31));
  }
  SetHashSalt(old_salt);

  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].report;
  EXPECT_GT(outcomes[0].transcript_len, 0u)
      << "the outage never blocked anything — the test proves nothing";
  for (size_t i = 1; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].report;
    EXPECT_EQ(outcomes[i].retry_digest, outcomes[0].retry_digest);
    EXPECT_EQ(outcomes[i].transcript_len, outcomes[0].transcript_len);
    EXPECT_EQ(outcomes[i].parked_total, outcomes[0].parked_total);
    EXPECT_EQ(outcomes[i].watchdog_aborts, outcomes[0].watchdog_aborts);
    EXPECT_EQ(outcomes[i].placement, outcomes[0].placement);
    EXPECT_EQ(outcomes[i].checksum, outcomes[0].checksum);
    EXPECT_EQ(outcomes[i].commits, outcomes[0].commits);
  }
}

TEST(DegradedModeTest, DebugStringsExposeDegradedState) {
  // Satellite: HERMES_TRACE_KEY / DebugString extensions. The degraded
  // rendering lists the retry transcript and frozen/suppressed state in
  // total order.
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  cluster.CrashNoStall(2);
  TxnRequest txn;
  txn.write_set = {4500};  // owned by the dead node
  uint64_t resolved = 0;
  cluster.Submit(txn, [&resolved](const engine::TxnResult&) { ++resolved; });
  cluster.RunUntil(MsToSim(5));

  const std::string debug = cluster.DegradedDebugString();
  EXPECT_NE(debug.find("membership epoch=1"), std::string::npos) << debug;
  EXPECT_NE(debug.find("down=[2]"), std::string::npos) << debug;
  EXPECT_NE(debug.find("degraded:"), std::string::npos) << debug;
  EXPECT_NE(debug.find("retry"), std::string::npos) << debug;

  cluster.RejoinNoStall(2);
  cluster.Drain();
  EXPECT_EQ(resolved, 1u);
  EXPECT_NE(cluster.DegradedDebugString().find("down=[]"), std::string::npos);
}

TEST(DegradedModeTest, DeferredCheckpointRefreshShortensNextReplay) {
  // Satellite: a no-stall rejoin happens under load with no quiescent
  // point; the injector arms a deferred refresh and takes it at the next
  // quiescent window, so a second outage replays a short suffix.
  const ClusterConfig config = DegradedClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(500);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 2;
  pc.min_outage_us = MsToSim(20);
  pc.max_outage_us = MsToSim(60);
  pc.no_stall = true;
  const FaultPlan plan = FaultPlan::Generate(pc, 21);
  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 4242;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(400));
  driver.Start();

  injector.RunUntil(MsToSim(500));
  injector.Drain();

  ASSERT_EQ(injector.recoveries().size(), 2u);
  EXPECT_GE(injector.checkpoint_refreshes(), 1)
      << "the deferred refresh never fired";
  EXPECT_FALSE(injector.refresh_pending());
  EXPECT_GT(injector.baseline_next_batch(), 0u);
  // The refresh between the cycles means the second replay covers only
  // the suffix sequenced since — not the whole history.
  EXPECT_LT(injector.recoveries()[1].replayed_batches,
            cluster.command_log().size());
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

}  // namespace
}  // namespace hermes
