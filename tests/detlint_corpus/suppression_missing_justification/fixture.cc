// detlint-fixture: path=src/core/suppression_missing_justification.cc
// detlint:allow(std-rand)
int Roll() { return std::rand() % 6; }
