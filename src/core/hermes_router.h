#ifndef HERMES_CORE_HERMES_ROUTER_H_
#define HERMES_CORE_HERMES_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/fusion_table.h"
#include "core/lease_table.h"
#include "routing/batch_scratch.h"
#include "routing/router.h"

namespace hermes::core {

/// The prescient transaction routing algorithm (paper §3.2, Algorithm 1)
/// plus fusion-table maintenance (§3.1, §4.1) and provisioning support
/// (§3.3).
///
/// Per batch:
///  1. Greedily reorders and routes transactions, picking at each step the
///     (transaction, node) pair with the fewest remote read-set records
///     under the evolving placement P_i (write-set keys move to the chosen
///     route — data fusion).
///  2. Computes theta = ceil(b/n * (1+alpha)) and the overloaded /
///     underloaded node sets.
///  3. Walks the reordered batch backward, rerouting transactions off
///     overloaded nodes when the move adds at most delta remote edges
///     (the txn's own remote reads plus reads of its write-set by later
///     transactions not on the new node), relaxing delta until the load
///     constraint holds.
///
/// Determinism: all ties break on (fewest remote reads, most local write
/// keys, lowest node id) and candidate scans use original batch order, so
/// every scheduler replica computes the identical plan.
class HermesRouter : public routing::Router {
 public:
  HermesRouter(partition::OwnershipMap* ownership, const CostModel* costs,
               int num_nodes, const HermesConfig& config);

  routing::RoutePlan RouteBatch(const Batch& batch) override;
  std::string name() const override { return "hermes"; }

  void OnRemoveNode(NodeId node) override;

  const FusionTable& fusion_table() const { return fusion_table_; }
  FusionTable& mutable_fusion_table() { return fusion_table_; }

  /// Enables replica-lease decisions (DESIGN.md §5 "Replica leases").
  /// `config` must outlive the router; decisions stay a pure function of
  /// (batch stream, membership schedule, config).
  void EnableReplication(const ReplicationConfig* config) {
    lease_table_.Configure(config);
  }
  const LeaseTable& lease_table() const { return lease_table_; }
  /// Drops all lease bookkeeping (leases + hotness counters) but keeps the
  /// configuration; a checkpoint restore starts replay from this state.
  void ResetReplication() { lease_table_.Reset(); }

  /// Cumulative counters for tests and benches.
  struct Stats {
    uint64_t routed_txns = 0;
    uint64_t remote_reads = 0;   ///< accesses shipped to a remote master
    uint64_t migrations = 0;     ///< records that changed owner
    uint64_t evictions = 0;      ///< fusion-table evictions
    uint64_t reroutes = 0;       ///< step-3 load-balancing moves
    uint64_t reorders = 0;       ///< txns whose position changed in step 1
    uint64_t replica_reads = 0;  ///< reads served from a local lease copy
  };
  const Stats& stats() const { return stats_; }

  /// Installs the passive tracer on the router and its fusion table:
  /// evictions, chunk migrations and provisioning markers emit events.
  /// Strictly write-only — no routing decision reads tracer state (the
  /// detlint obs-decision rule audits this directory for exactly that).
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    fusion_table_.set_tracer(tracer);
  }

 private:
  /// Routes one run of regular transactions (special transactions act as
  /// segment barriers) and appends the plans. Dispatches to the optimized
  /// implementation unless `config_.use_reference_routing` is set.
  void RouteSegment(const std::vector<const TxnRequest*>& txns,
                    std::vector<routing::RoutedTxn>* out);

  /// O(b log b + R·n) fast path: keys interned to dense ids, Step 1
  /// selection via a lazy bucket queue, all per-batch state in scratch_
  /// (cleared, not freed, between batches — zero steady-state allocation).
  void RouteSegmentOptimized(const std::vector<const TxnRequest*>& txns,
                             std::vector<routing::RoutedTxn>* out);

  /// Straightforward O(b²·n) reference (the original implementation),
  /// kept as the equivalence-test oracle.
  void RouteSegmentReference(const std::vector<const TxnRequest*>& txns,
                             std::vector<routing::RoutedTxn>* out);

  /// Materializes the plan for one placed transaction against the live
  /// ownership map and applies its fusion-table updates (including
  /// evictions, which append extra migration accesses).
  routing::RoutedTxn Materialize(const TxnRequest& txn, NodeId route);

  /// Chunk migrations ship cold records to the target and re-home the
  /// chunk's range; keys currently in the fusion table are skipped (§3.3).
  routing::RoutedTxn PlanChunkMigration(const TxnRequest& txn);

  /// Provisioning markers: adjusts the active set; on removal, evicts
  /// every fusion entry on the leaving node so its hot records migrate
  /// out with normal traffic.
  routing::RoutedTxn PlanProvisioning(const TxnRequest& txn);

  HermesConfig config_;
  FusionTable fusion_table_;
  LeaseTable lease_table_;
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
  /// Batch-boundary lease ops, attached to the batch's first routed txn
  /// (scratch; cleared per batch).
  std::vector<routing::ReplicaOp> lease_ops_;

  /// Per-batch working set of the optimized RouteSegment and Materialize,
  /// owned by the router so capacity persists across batches. Every
  /// container is reset with clear()/assign() — steady-state routing does
  /// no heap allocation on the hot path.
  struct RouterScratch {
    routing::KeyInterner interner;
    // Per-candidate key sets as arena spans (reads, then writes).
    std::vector<routing::Span> read_span;
    std::vector<routing::Span> write_span;
    // Per-key (dense id) ownership view: the pre-batch owner and the
    // evolving Step-1 placement P_i, as NodeId and as dense node index
    // (-1 when the owner is not an active node).
    std::vector<NodeId> base_owner;
    std::vector<int32_t> base_owner_idx;
    std::vector<NodeId> cur_owner;
    std::vector<int32_t> cur_owner_idx;
    // key id -> candidate indexes reading / writing it.
    routing::Csr readers_of;
    routing::Csr writers_of;
    // Per-candidate local-key counts per node, flattened to b*n.
    std::vector<int32_t> read_cnt;
    std::vector<int32_t> write_cnt;
    std::vector<int32_t> best_idx;
    std::vector<int32_t> best_remote;
    std::vector<uint8_t> placed;
    routing::BucketQueue bucket_queue;
    // Step-1 output: candidate index by B' position; route per candidate.
    std::vector<int32_t> order;
    std::vector<NodeId> route;
    std::vector<int32_t> route_idx;
    // Step 2/3 state.
    std::vector<int64_t> load;
    routing::Csr pos_readers;
    routing::Csr pos_writers;
    std::vector<int32_t> edge_hist;
    // Materialize scratch.
    std::vector<std::pair<Key, bool>> merged;
    std::vector<Key> pinned;
    std::vector<Key> evicted;
  };
  RouterScratch scratch_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_HERMES_ROUTER_H_
