#include "engine/failure_detector.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "engine/cluster.h"

namespace hermes::engine {

FailureDetector::FailureDetector(Cluster* cluster,
                                 const DetectorConfig& config)
    : cluster_(cluster), config_(config) {
  assert(config_.heartbeat_period_us > 0);
  assert(config_.miss_threshold > 0);
  assert(config_.confirm_threshold > 0);
}

void FailureDetector::EnsureSize(int num_nodes) {
  const size_t n = static_cast<size_t>(num_nodes);
  if (miss_.size() >= n) return;
  for (auto& row : miss_) row.resize(n, 0);
  miss_.resize(n, std::vector<int>(n, 0));
  confirm_.resize(n, 0);
}

bool FailureDetector::Responsive(NodeId node) const {
  // A partitioned node's process is alive — it answers probes once the
  // link heals. A node that is down for any OTHER reason (injector crash)
  // is genuinely dead and stays out of the health graph until its rejoin.
  return cluster_->membership().alive(node) || detector_down_.count(node) > 0;
}

void FailureDetector::Arm(SimTime active_until) {
  assert(!cluster_->simulator().in_lane_context() &&
         "the detector is armed in exclusive context only");
  active_until_ = std::max(active_until_, active_until);
  if (armed_) return;
  armed_ = true;
  // Scheduled from exclusive context, so the tick lands on the control
  // lane and runs in the exclusive slice of its epoch.
  cluster_->simulator().Schedule(config_.heartbeat_period_us,
                                 [this] { Tick(); });
}

void FailureDetector::Tick() {
  const int n = cluster_->num_nodes();
  EnsureSize(n);
  ++ticks_;
  const SimTime now = cluster_->Now();
  sim::Network& net = cluster_->network();
  obs::Tracer* tracer = &cluster_->tracer();

  // Round 1: per-directed-link heartbeat outcomes, in (src, dst) order.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (!Responsive(i) || !Responsive(j)) {
        // Dead endpoints exchange nothing; clear the counters so a
        // rejoining node starts from a clean slate instead of inheriting
        // stale misses.
        miss_[i][j] = 0;
        continue;
      }
      const bool delivered =
          net.reachable(i, j) && !(loss_ && loss_(i, j, ticks_, now));
      if (delivered) {
        miss_[i][j] = 0;
        continue;
      }
      miss_[i][j] = std::min(miss_[i][j] + 1, config_.miss_threshold);
      heartbeat_misses_.Add();
      HERMES_TRACE(tracer, obs::EventKind::kHeartbeatMiss, i, kInvalidTxn,
                   static_cast<Key>(miss_[i][j]), static_cast<uint64_t>(j));
    }
  }

  // Round 2: the mutual-health graph over responsive nodes. Components
  // are found by BFS in ascending id order; the primary component is the
  // largest, ties broken by lowest member id — a total order independent
  // of hash salts and thread counts.
  std::vector<int> component(static_cast<size_t>(n), -1);
  std::vector<int> comp_size;
  std::vector<NodeId> queue;
  for (NodeId i = 0; i < n; ++i) {
    if (!Responsive(i) || component[i] >= 0) continue;
    const int c = static_cast<int>(comp_size.size());
    comp_size.push_back(0);
    queue.clear();
    queue.push_back(i);
    component[i] = c;
    while (!queue.empty()) {
      const NodeId u = queue.back();
      queue.pop_back();
      ++comp_size[c];
      for (NodeId v = 0; v < n; ++v) {
        if (v == u || !Responsive(v) || component[v] >= 0) continue;
        const bool healthy = miss_[u][v] < config_.miss_threshold &&
                             miss_[v][u] < config_.miss_threshold;
        if (!healthy) continue;
        component[v] = c;
        queue.push_back(v);
      }
    }
  }
  int primary = -1;
  for (int c = 0; c < static_cast<int>(comp_size.size()); ++c) {
    // Components are discovered in ascending min-member order, so strict
    // > keeps the lowest-id component on size ties.
    if (primary < 0 || comp_size[c] > comp_size[primary]) primary = c;
  }

  // Round 3: membership transitions, in node-id order. Suspects reuse the
  // kCrashNoStall path verbatim; restores the RejoinNoStall path — the
  // resulting epochs are indistinguishable from plan-scripted ones.
  for (NodeId i = 0; i < n; ++i) {
    if (!Responsive(i)) continue;
    const bool in_primary = component[i] == primary;
    const bool suspected = detector_down_.count(i) > 0;
    if (in_primary && suspected) {
      if (++confirm_[i] >= config_.confirm_threshold) {
        confirm_[i] = 0;
        detector_down_.erase(i);
        restores_.Add();
        cluster_->RejoinNoStall(i);
        HERMES_TRACE(tracer, obs::EventKind::kDetectorRestore, i, kInvalidTxn,
                     static_cast<Key>(-1), cluster_->membership().epoch());
      }
    } else if (!in_primary) {
      confirm_[i] = 0;
      if (!suspected && cluster_->membership().alive(i)) {
        detector_down_.insert(i);
        suspects_.Add();
        cluster_->CrashNoStall(i);
        HERMES_TRACE(tracer, obs::EventKind::kDetectorSuspect, i, kInvalidTxn,
                     static_cast<Key>(-1), cluster_->membership().epoch());
      }
    }
  }

  // Re-arm while there is anything left to watch; otherwise the chain
  // stops so Drain() (which runs until no events remain) terminates.
  bool misses = false;
  for (NodeId i = 0; i < n && !misses; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (miss_[i][j] > 0) {
        misses = true;
        break;
      }
    }
  }
  if (net.any_cut() || !detector_down_.empty() || misses ||
      now < active_until_) {
    cluster_->simulator().Schedule(config_.heartbeat_period_us,
                                   [this] { Tick(); });
  } else {
    armed_ = false;
  }
}

std::string FailureDetector::DebugString() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "detector: armed=%d ticks=%llu misses=%llu suspects=%llu "
                "restores=%llu\n",
                armed_ ? 1 : 0, static_cast<unsigned long long>(ticks_),
                static_cast<unsigned long long>(heartbeat_misses_.value()),
                static_cast<unsigned long long>(suspects_.value()),
                static_cast<unsigned long long>(restores_.value()));
  out += buf;
  out += "  suspected:";
  for (NodeId node : detector_down_) {
    std::snprintf(buf, sizeof(buf), " %d(confirm=%d)", node,
                  node < static_cast<NodeId>(confirm_.size()) ? confirm_[node]
                                                              : 0);
    out += buf;
  }
  out += "\n";
  for (NodeId i = 0; i < static_cast<NodeId>(miss_.size()); ++i) {
    for (NodeId j = 0; j < static_cast<NodeId>(miss_[i].size()); ++j) {
      if (miss_[i][j] == 0) continue;
      std::snprintf(buf, sizeof(buf), "  miss %d->%d = %d\n", i, j,
                    miss_[i][j]);
      out += buf;
    }
  }
  return out;
}

}  // namespace hermes::engine
