// Tentpole oracle for the parallel simulator: the SAME seeded workload is
// run with config.sim.threads in {0, 1, 2, 4, 8} — 0 being the sequential
// oracle mode — and the decision digest, the placement digest and the
// trace digest must be bit-identical at every thread count, under several
// hash salts. Three workloads cover the interesting surfaces:
//
//   1. a fault-free Hermes run with a mid-run scale-out (routing, fusion
//      evictions, migrations, dynamic lane growth);
//   2. a chaos plan (link chaos + a stalling crash/rejoin cycle), whose
//      perturbation draws are keyed per-link-message and so must be
//      thread-count-invariant;
//   3. a degraded kCrashNoStall plan (watchdog aborts, parked-txn FIFO,
//      retries), the trickiest shared-state surface in the executor.
//
// The epoch design makes this hold by construction — each virtual
// timestamp is drained control-first, then lane-local in (time, seq)
// order, then barrier-merged in lane order — and this test is the proof.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/digest.h"
#include "common/hash.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;

const int kThreadCounts[] = {0, 1, 2, 4, 8};

std::vector<uint64_t> Salts() {
  return {HashSalt(), 0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL};
}

struct RunResult {
  uint64_t decision = 0;
  uint64_t decision_count = 0;
  uint64_t placement = 0;
  uint64_t trace = 0;
  uint64_t trace_count = 0;
  uint64_t state_checksum = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
};

bool operator==(const RunResult& a, const RunResult& b) {
  return a.decision == b.decision && a.decision_count == b.decision_count &&
         a.placement == b.placement && a.trace == b.trace &&
         a.trace_count == b.trace_count &&
         a.state_checksum == b.state_checksum && a.commits == b.commits &&
         a.aborts == b.aborts;
}

ClusterConfig BaseConfig(int threads) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 6'000;
  config.hermes.fusion_table_capacity = 250;
  config.migration_chunk_records = 250;
  config.obs.trace_enabled = true;  // trace_digest must be covered too
  config.sim.threads = threads;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

RunResult Harvest(Cluster& cluster) {
  RunResult r;
  r.decision = cluster.decision_digest().value();
  r.decision_count = cluster.decision_digest().count();
  r.placement = cluster.placement_digest().value();
  r.trace = cluster.trace_digest().value();
  r.trace_count = cluster.trace_digest().count();
  r.state_checksum = cluster.StateChecksum();
  r.commits = cluster.metrics().total_commits();
  r.aborts = cluster.metrics().total_aborts();
  return r;
}

// Workload 1: fault-free, with a mid-run AddNode so a lane appears while
// the simulation runs (EnsureLanes growth under the barrier).
RunResult RunPlain(int threads) {
  ClusterConfig config = BaseConfig(threads);
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 20'260'808;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(400));
  driver.Start();

  cluster.RunUntil(MsToSim(150));
  cluster.AddNode({{0, config.num_records / 4 - 1, 4}},
                  /*migrate_cold=*/true);
  cluster.RunUntil(MsToSim(400));
  cluster.Drain();
  return Harvest(cluster);
}

// Workload 2: chaos — link chaos plus one stalling crash/rejoin cycle.
RunResult RunChaos(int threads) {
  ClusterConfig config = BaseConfig(threads);
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(250);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(20);
  pc.max_outage_us = MsToSim(60);
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 300;
  const FaultPlan plan = FaultPlan::Generate(pc, 41);
  FaultInjector injector(&cluster, plan, MapFactory(config));

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 777;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 10, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(pc.horizon_us);
  driver.Start();

  injector.RunUntil(pc.horizon_us);
  injector.Drain();
  return Harvest(cluster);
}

// Workload 3: degraded kCrashNoStall — the cluster keeps sequencing
// through the outage (watchdog aborts, parked FIFO, deterministic
// retries all live on the barrier path).
RunResult RunDegraded(int threads) {
  ClusterConfig config = BaseConfig(threads);
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(250);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(30);
  pc.max_outage_us = MsToSim(70);
  pc.no_stall = true;
  const FaultPlan plan = FaultPlan::Generate(pc, 7);
  FaultInjector injector(&cluster, plan, MapFactory(config));

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 1234;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 10, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(pc.horizon_us);
  driver.Start();

  injector.RunUntil(pc.horizon_us);
  injector.Drain();
  return Harvest(cluster);
}

void CheckAcrossThreadsAndSalts(const char* name,
                                RunResult (*run)(int threads)) {
  const uint64_t old_salt = HashSalt();
  for (uint64_t salt : Salts()) {
    SetHashSalt(salt);
    const RunResult oracle = run(/*threads=*/0);
    ASSERT_GT(oracle.commits, 50u) << name << ": workload too small";
    ASSERT_GT(oracle.trace_count, 0u) << name << ": tracing was off";
    std::printf("%s salt=0x%016llx threads=0 decision=%016llx "
                "placement=%016llx trace=%016llx commits=%llu\n",
                name, static_cast<unsigned long long>(salt),
                static_cast<unsigned long long>(oracle.decision),
                static_cast<unsigned long long>(oracle.placement),
                static_cast<unsigned long long>(oracle.trace),
                static_cast<unsigned long long>(oracle.commits));
    for (int threads : kThreadCounts) {
      if (threads == 0) continue;
      const RunResult got = run(threads);
      EXPECT_TRUE(oracle == got)
          << name << " diverged at threads=" << threads << " salt=0x"
          << std::hex << salt << ": decision " << got.decision << " vs "
          << oracle.decision << ", placement " << got.placement << " vs "
          << oracle.placement << ", trace " << got.trace << " vs "
          << oracle.trace << std::dec << " (trace events " << got.trace_count
          << " vs " << oracle.trace_count << "), commits " << got.commits
          << " vs " << oracle.commits << ", aborts " << got.aborts << " vs "
          << oracle.aborts;
      if (!(oracle == got)) break;  // one divergence is enough signal
    }
  }
  SetHashSalt(old_salt);
}

TEST(SequentialVsParallelDigestTest, PlainWorkload) {
  CheckAcrossThreadsAndSalts("plain", &RunPlain);
}

TEST(SequentialVsParallelDigestTest, ChaosWorkload) {
  CheckAcrossThreadsAndSalts("chaos", &RunChaos);
}

TEST(SequentialVsParallelDigestTest, DegradedNoStallWorkload) {
  CheckAcrossThreadsAndSalts("degraded", &RunDegraded);
}

}  // namespace
}  // namespace hermes
