#include "routing/metis_lite.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/hash.h"

namespace hermes::routing {
namespace {

/// Greedy affinity seeding: vertices in descending weight order go to the
/// partition they have the most edge weight to, subject to the cap.
std::vector<int> GreedySeed(const Graph& g, int k, uint64_t cap,
                            std::vector<uint64_t>& part_weight) {
  const size_t n = g.num_vertices();
  std::vector<int> part(n, -1);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return g.vertex_weight[a] > g.vertex_weight[b];
  });

  std::vector<uint64_t> affinity(k, 0);
  for (uint32_t v : order) {
    std::fill(affinity.begin(), affinity.end(), 0);
    for (const auto& [u, w] : g.adj[v]) {
      if (part[u] >= 0) affinity[part[u]] += w;
    }
    int best = -1;
    for (int p = 0; p < k; ++p) {
      if (part_weight[p] + g.vertex_weight[v] > cap) continue;
      if (best < 0 || affinity[p] > affinity[best] ||
          (affinity[p] == affinity[best] &&
           part_weight[p] < part_weight[best])) {
        best = p;
      }
    }
    if (best < 0) {
      best = static_cast<int>(std::min_element(part_weight.begin(),
                                               part_weight.end()) -
                              part_weight.begin());
    }
    part[v] = best;
    part_weight[best] += g.vertex_weight[v];
  }
  return part;
}

/// Kernighan–Lin-style single-vertex refinement under the cap.
void Refine(const Graph& g, int k, uint64_t cap, int passes,
            std::vector<int>& part, std::vector<uint64_t>& part_weight) {
  const size_t n = g.num_vertices();
  std::vector<uint64_t> affinity(k, 0);
  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (size_t v = 0; v < n; ++v) {
      std::fill(affinity.begin(), affinity.end(), 0);
      for (const auto& [u, w] : g.adj[v]) affinity[part[u]] += w;
      const int cur = part[v];
      int best = cur;
      for (int p = 0; p < k; ++p) {
        if (p == cur) continue;
        if (part_weight[p] + g.vertex_weight[v] > cap) continue;
        if (affinity[p] > affinity[best]) best = p;
      }
      if (best != cur) {
        part_weight[cur] -= g.vertex_weight[v];
        part_weight[best] += g.vertex_weight[v];
        part[v] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

/// Heavy-edge matching: each vertex pairs with its heaviest-edge unmatched
/// neighbor (visiting heavy vertices first), the classic METIS coarsening
/// step that glues strongly co-accessed vertices together before any
/// partitioning decision is made.
std::vector<uint32_t> HeavyEdgeMatch(const Graph& g, uint64_t cap) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> match(n);
  std::iota(match.begin(), match.end(), 0);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return g.vertex_weight[a] > g.vertex_weight[b];
  });
  std::vector<bool> matched(n, false);
  for (uint32_t v : order) {
    if (matched[v]) continue;
    uint32_t best = v;
    uint64_t best_w = 0;
    for (const auto& [u, w] : g.adj[v]) {
      if (u == v || matched[u]) continue;
      // Never grow a supervertex past the partition cap, or it could not
      // be placed anywhere later.
      if (g.vertex_weight[v] + g.vertex_weight[u] > cap) continue;
      if (w > best_w || (w == best_w && u < best)) {
        best = u;
        best_w = w;
      }
    }
    matched[v] = true;
    if (best != v) {
      matched[best] = true;
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

/// Moves vertices off overweight partitions (cheapest cut increase first)
/// until every partition fits under the cap or no further move helps.
void RepairBalance(const Graph& g, int k, uint64_t cap,
                   std::vector<int>& part,
                   std::vector<uint64_t>& part_weight) {
  const size_t n = g.num_vertices();
  std::vector<uint64_t> affinity(k, 0);
  for (int guard = 0; guard < static_cast<int>(n) + 16; ++guard) {
    int heavy = -1;
    for (int p = 0; p < k; ++p) {
      if (part_weight[p] > cap && (heavy < 0 || part_weight[p] > part_weight[heavy])) {
        heavy = p;
      }
    }
    if (heavy < 0) return;
    // Cheapest vertex to shed: minimizes lost affinity minus gained.
    int best_v = -1, best_target = -1;
    int64_t best_cost = 0;
    for (size_t v = 0; v < n; ++v) {
      if (part[v] != heavy) continue;
      std::fill(affinity.begin(), affinity.end(), 0);
      for (const auto& [u, w] : g.adj[v]) affinity[part[u]] += w;
      for (int p = 0; p < k; ++p) {
        if (p == heavy) continue;
        if (part_weight[p] + g.vertex_weight[v] > cap) continue;
        const int64_t cost = static_cast<int64_t>(affinity[heavy]) -
                             static_cast<int64_t>(affinity[p]);
        if (best_v < 0 || cost < best_cost) {
          best_v = static_cast<int>(v);
          best_target = p;
          best_cost = cost;
        }
      }
    }
    if (best_v < 0) return;  // nothing movable
    part_weight[heavy] -= g.vertex_weight[best_v];
    part_weight[best_target] += g.vertex_weight[best_v];
    part[best_v] = best_target;
  }
}

std::vector<int> PartitionRecursive(const Graph& g, int k, uint64_t cap,
                                    int refinement_passes, int depth) {
  const size_t n = g.num_vertices();
  // Base case: small enough (or max depth) for direct greedy + refine.
  if (n <= static_cast<size_t>(2 * k) || depth >= 16) {
    std::vector<uint64_t> part_weight(k, 0);
    std::vector<int> part = GreedySeed(g, k, cap, part_weight);
    Refine(g, k, cap, refinement_passes, part, part_weight);
    return part;
  }

  // Coarsen.
  const std::vector<uint32_t> match = HeavyEdgeMatch(g, cap);
  std::vector<uint32_t> coarse_id(n);
  uint32_t next = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (match[v] >= v) coarse_id[v] = next++;  // v is group representative
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (match[v] < v) coarse_id[v] = coarse_id[match[v]];
  }
  if (next == n) {  // no edges matched: stop coarsening
    std::vector<uint64_t> part_weight(k, 0);
    std::vector<int> part = GreedySeed(g, k, cap, part_weight);
    Refine(g, k, cap, refinement_passes, part, part_weight);
    return part;
  }

  Graph coarse;
  coarse.vertex_weight.assign(next, 0);
  coarse.adj.assign(next, {});
  for (uint32_t v = 0; v < n; ++v) {
    coarse.vertex_weight[coarse_id[v]] += g.vertex_weight[v];
  }
  HashMap<uint64_t, uint64_t> edges;
  for (uint32_t v = 0; v < n; ++v) {
    for (const auto& [u, w] : g.adj[v]) {
      const uint32_t a = coarse_id[v];
      const uint32_t b = coarse_id[u];
      if (a >= b) continue;  // undirected: count each pair once, skip self
      edges[(static_cast<uint64_t>(a) << 32) | b] += w;
    }
  }
  // detlint:allow(unordered-iter) adjacency fill; every list is sorted below
  for (const auto& [packed, w] : edges) {
    const auto a = static_cast<uint32_t>(packed >> 32);
    const auto b = static_cast<uint32_t>(packed & 0xffffffffULL);
    coarse.adj[a].emplace_back(b, w);
    coarse.adj[b].emplace_back(a, w);
  }
  for (auto& neighbors : coarse.adj) {
    std::sort(neighbors.begin(), neighbors.end());
  }

  // Partition the coarse graph, project back, refine at this level.
  const std::vector<int> coarse_part =
      PartitionRecursive(coarse, k, cap, refinement_passes, depth + 1);
  std::vector<int> part(n);
  std::vector<uint64_t> part_weight(k, 0);
  for (uint32_t v = 0; v < n; ++v) {
    part[v] = coarse_part[coarse_id[v]];
    part_weight[part[v]] += g.vertex_weight[v];
  }
  RepairBalance(g, k, cap, part, part_weight);
  Refine(g, k, cap, refinement_passes, part, part_weight);
  return part;
}

}  // namespace

uint64_t Graph::CutWeight(const std::vector<int>& assignment) const {
  uint64_t cut = 0;
  for (size_t v = 0; v < adj.size(); ++v) {
    for (const auto& [u, w] : adj[v]) {
      if (u > v && assignment[u] != assignment[v]) cut += w;
    }
  }
  return cut;
}

std::vector<int> PartitionGraph(const Graph& graph, int k, double imbalance,
                                int refinement_passes) {
  assert(k > 0);
  if (graph.num_vertices() == 0) return {};
  const uint64_t total = std::accumulate(graph.vertex_weight.begin(),
                                         graph.vertex_weight.end(), 0ULL);
  const auto cap = static_cast<uint64_t>(
      (1.0 + imbalance) * static_cast<double>(total) / k) + 1;
  return PartitionRecursive(graph, k, cap, refinement_passes, 0);
}

}  // namespace hermes::routing
