#include "sim/event_queue.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/digest.h"

namespace hermes::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(30, [&] { fired.push_back(3); });
  q.Push(10, [&] { fired.push_back(1); });
  q.Push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.Pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.Pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Push(42, [] {});
  q.Push(7, [] {});
  EXPECT_EQ(q.NextTime(), 7u);
  q.Pop();
  EXPECT_EQ(q.NextTime(), 42u);
}

TEST(EventQueueTest, SizeTracksContents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.Push(1, [] {});
  q.Push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
}

// The documented total order is (when, insertion sequence): among equal
// virtual times, events fire strictly in the order they were pushed — no
// matter how pushes at other timestamps interleave with them. The
// scheduler, network, and executor all rely on this when they schedule
// work "now".
TEST(EventQueueTest, EqualTimeOrderIndependentOfInsertionPattern) {
  // Three insertion patterns for the same logical event set: events
  // {0..5} at time 100 interleaved with noise at times 50/150/100±0.
  // Within time 100 the push order of the labeled events is identical, so
  // the firing order of the labels must be identical too.
  auto run = [](int pattern) {
    EventQueue q;
    std::vector<int> fired;
    auto label = [&fired](int i) { return [&fired, i] { fired.push_back(i); }; };
    switch (pattern) {
      case 0:  // labels first, then noise
        for (int i = 0; i < 6; ++i) q.Push(100, label(i));
        q.Push(50, [] {});
        q.Push(150, [] {});
        break;
      case 1:  // noise before, between, after
        q.Push(150, [] {});
        q.Push(100, label(0));
        q.Push(50, [] {});
        q.Push(100, label(1));
        q.Push(100, label(2));
        q.Push(150, [] {});
        q.Push(100, label(3));
        q.Push(50, [] {});
        q.Push(100, label(4));
        q.Push(100, label(5));
        break;
      default:  // labels pushed while draining earlier times
        q.Push(50, [&q, &label] {
          for (int i = 0; i < 3; ++i) q.Push(100, label(i));
        });
        q.Push(50, [&q, &label] {
          for (int i = 3; i < 6; ++i) q.Push(100, label(i));
        });
        q.Push(150, [] {});
        break;
    }
    while (!q.empty()) q.Pop()();
    return fired;
  };
  const std::vector<int> want = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(run(0), want);
  EXPECT_EQ(run(1), want);
  EXPECT_EQ(run(2), want);
}

TEST(EventQueueTest, PushDuringPopOfSameTimeFiresAfterAllCurrent) {
  // An event at time T that pushes another event at time T: the new event
  // has a larger sequence number, so it fires after everything already
  // enqueued at T — the queue can never reorder "now" work ahead of
  // earlier "now" work.
  EventQueue q;
  std::vector<int> fired;
  q.Push(10, [&] {
    fired.push_back(0);
    q.Push(10, [&] { fired.push_back(2); });
  });
  q.Push(10, [&] { fired.push_back(1); });
  while (!q.empty()) q.Pop()();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, DigestRecordsPopOrder) {
  // The digest folds every popped (when, seq) pair, in pop order. Two
  // queues that fire the same events in the same order must agree; a
  // queue that fires them in a different order must not.
  auto digest_of = [](const std::vector<SimTime>& push_times) {
    EventQueue q;
    DecisionDigest d;
    q.set_digest(&d);
    for (SimTime t : push_times) q.Push(t, [] {});
    while (!q.empty()) q.Pop()();
    return std::make_pair(d.value(), d.count());
  };
  const auto a = digest_of({30, 10, 20});
  const auto b = digest_of({30, 10, 20});
  EXPECT_EQ(a, b);
  // Each pop mixes two words: when and seq.
  EXPECT_EQ(a.second, 6u);
  // Same multiset of times pushed in a different order assigns different
  // sequence numbers, so the digest differs — the digest is a transcript
  // of the actual firing order, not of the event set.
  const auto c = digest_of({10, 20, 30});
  EXPECT_NE(a.first, c.first);
}

}  // namespace
}  // namespace hermes::sim
