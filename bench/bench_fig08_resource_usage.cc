// Reproduces Fig. 8: average CPU utilization and network bytes per
// transaction over time under the Google workload.
//
// Expected shape (paper): Hermes sustains the highest CPU utilization
// (better load balancing lets it use the cluster) while its per-txn
// network usage is comparable to — sometimes below — the baselines
// (fewer distributed transactions); Clay shows network spikes from its
// dedicated migration phases.

#include <cstdio>

#include "bench_common.h"

using hermes::bench::GoogleRunParams;
using hermes::bench::PrintSeriesTable;
using hermes::bench::RunGoogleWorkload;
using hermes::bench::RunResult;
using hermes::engine::RouterKind;

namespace {

// Wire-substrate section (DESIGN.md §5 "Wire substrate"): the same
// workload on a congested fabric. T-Part's return migrations keep a
// steady stream of single-record bulk shipments on the wire; with the
// substrate enabled and a slow per-link serializer, foreground messages
// queue behind them. Envelope coalescing folds those records into fewer
// framed messages — the saved framing headers are the difference between
// a serializer that keeps up and one that builds a queue.
GoogleRunParams CongestedParams(bool coalesce) {
  GoogleRunParams params;
  params.windows = 6;      // the queueing story stabilizes within 6 windows
  params.num_nodes = 5;    // fewer links -> denser per-link streams
  params.clients = 800;
  params.length_mean = 8.0;  // multi-record returns arrive as bursts
  params.distributed_ratio = 0.7;
  params.tweak = [coalesce](hermes::ClusterConfig& config) {
    // A chatty RPC fabric: small records behind a large per-message
    // framing header, with little serializer headroom. This is where
    // envelopes pay: every record folded into one saves a whole header
    // (T-Part returns each record as its own bulk message).
    config.costs.record_bytes = 128;
    config.costs.message_overhead_bytes = 512;
    config.net.enabled = true;
    config.net.bytes_per_us = 1.2;
    if (coalesce) {
      // One sequencing epoch of returns folds per envelope; the size cap
      // keeps head-of-line blocking near a single raw message.
      config.net.coalesce_window_us = 10'000;
      config.net.coalesce_max_bytes = 768;
    } else {
      config.net.coalesce_window_us = 0;
    }
  };
  return params;
}

void PrintNetLine(const char* label, const RunResult& r) {
  std::printf("NET %s fg_delay_p50_us=%llu fg_delay_p99_us=%llu "
              "bulk_delay_p99_us=%llu envelopes=%llu coalesced=%llu "
              "credit_stalls=%llu p99_latency_us=%llu throughput=%.0f\n",
              label,
              static_cast<unsigned long long>(r.wire_fg_delay_p50_us),
              static_cast<unsigned long long>(r.wire_fg_delay_p99_us),
              static_cast<unsigned long long>(r.wire_bulk_delay_p99_us),
              static_cast<unsigned long long>(r.wire_envelopes),
              static_cast<unsigned long long>(r.wire_coalesced),
              static_cast<unsigned long long>(r.wire_credit_stalls),
              static_cast<unsigned long long>(r.latency_p99_us),
              r.mean_throughput);
}

}  // namespace

int main() {
  std::printf("Fig. 8 reproduction: CPU and network usage over time\n");
  GoogleRunParams defaults;
  const double window_s = defaults.window_us / 1e6;

  RunResult calvin = RunGoogleWorkload(RouterKind::kCalvin, GoogleRunParams{});
  GoogleRunParams clay_params;
  clay_params.enable_clay = true;
  RunResult clay = RunGoogleWorkload(RouterKind::kCalvin, std::move(clay_params));
  RunResult gstore = RunGoogleWorkload(RouterKind::kGStore, GoogleRunParams{});
  RunResult tpart = RunGoogleWorkload(RouterKind::kTPart, GoogleRunParams{});
  RunResult leap = RunGoogleWorkload(RouterKind::kLeap, GoogleRunParams{});
  RunResult hermes = RunGoogleWorkload(RouterKind::kHermes, GoogleRunParams{});

  auto pct = [](std::vector<double> v) {
    for (double& x : v) x *= 100.0;
    return v;
  };
  PrintSeriesTable("Fig 8a: average CPU usage",
                   {"calvin", "clay", "gstore", "tpart", "leap", "hermes"},
                   {pct(calvin.cpu), pct(clay.cpu), pct(gstore.cpu),
                    pct(tpart.cpu), pct(leap.cpu), pct(hermes.cpu)},
                   window_s, "percent of worker capacity");

  PrintSeriesTable(
      "Fig 8b: network usage per transaction",
      {"calvin", "clay", "gstore", "tpart", "leap", "hermes"},
      {calvin.net_per_txn, clay.net_per_txn, gstore.net_per_txn,
       tpart.net_per_txn, leap.net_per_txn, hermes.net_per_txn},
      window_s, "bytes per committed txn");

  // Receiver-side view of the same traffic. On the fault-free runs here it
  // tracks Fig 8b modulo messages in flight across a window boundary; under
  // a chaos profile (bench_fault_recovery) the two diverge by the dropped
  // and duplicated wire attempts.
  PrintSeriesTable(
      "Fig 8c: network bytes received per transaction",
      {"calvin", "clay", "gstore", "tpart", "leap", "hermes"},
      {calvin.net_recv_per_txn, clay.net_recv_per_txn, gstore.net_recv_per_txn,
       tpart.net_recv_per_txn, leap.net_recv_per_txn, hermes.net_recv_per_txn},
      window_s, "bytes per committed txn");

  // Fig 8d: migration traffic vs a bounded wire. Both runs below enable
  // the wire substrate with a slow serializer; they differ only in
  // whether bulk shipments coalesce into envelopes.
  const double net_window_s =
      CongestedParams(false).window_us / 1e6;
  RunResult raw =
      RunGoogleWorkload(RouterKind::kTPart, CongestedParams(false));
  RunResult coalesced =
      RunGoogleWorkload(RouterKind::kTPart, CongestedParams(true));

  PrintSeriesTable(
      "Fig 8d: per-class wire bytes per transaction (congested fabric)",
      {"fg_raw", "bulk_raw", "fg_coalesced", "bulk_coalesced"},
      {raw.net_fg_per_txn, raw.net_bulk_per_txn, coalesced.net_fg_per_txn,
       coalesced.net_bulk_per_txn},
      net_window_s, "bytes per committed txn");

  PrintNetLine("congested_raw", raw);
  PrintNetLine("congested_coalesced", coalesced);

  std::printf("\npaper shape: hermes uses the most CPU (balanced load) with "
              "network per txn at or below the baselines; on the congested "
              "fabric, coalescing the bulk migration stream cuts the "
              "foreground p99 queueing delay\n");
  return 0;
}
