#ifndef HERMES_ROUTING_LEAP_ROUTER_H_
#define HERMES_ROUTING_LEAP_ROUTER_H_

#include <string>

#include "routing/router.h"

namespace hermes::routing {

/// LEAP baseline (Lin et al., SIGMOD'16; paper §5.2.1): look-present data
/// fusion. Every record a transaction accesses migrates to its master
/// (the majority owner) and *stays there*, so later transactions with
/// temporal locality find the records fused on one node. LEAP neither
/// balances load nor reorders, which is exactly what exposes it to the
/// single-node pile-up and ping-pong problems the paper describes.
class LeapRouter : public Router {
 public:
  LeapRouter(partition::OwnershipMap* ownership, const CostModel* costs,
             int num_nodes);

  RoutePlan RouteBatch(const Batch& batch) override;
  std::string name() const override { return "leap"; }

  uint64_t migrations() const { return migrations_; }

 private:
  uint64_t migrations_ = 0;
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_LEAP_ROUTER_H_
