#include "fault/invariant_monitor.h"

#include <cstdio>

namespace hermes::fault {

void InvariantMonitor::Fail(std::string message) {
  failures_.push_back(std::move(message));
  violations_.Add();
  // Passive observability: the monitor writes the violation into the
  // trace stream (cluster scope, arg = running failure count) but never
  // reads anything back — detection stays side-effect-free for decisions.
  HERMES_TRACE(tracer_, obs::EventKind::kInvariantViolation, kInvalidNode,
               kInvalidTxn, static_cast<Key>(-1), failures_.size());
}

std::string InvariantMonitor::FailureReport() const {
  std::string out;
  for (const std::string& f : failures_) {
    out += f;
    out += '\n';
  }
  return out;
}

bool InvariantMonitor::CheckRecordSingularity(engine::Cluster& cluster,
                                              const std::string& context) {
  const size_t before = failures_.size();
  const auto& inflight = cluster.executor().inflight_records();
  char buf[256];
  for (Key k = 0; k < num_records_; ++k) {
    int copies = 0;
    NodeId first = kInvalidNode, second = kInvalidNode;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      if (!cluster.node(n).store().Contains(k)) continue;
      if (copies == 0) {
        first = n;
      } else {
        second = n;
      }
      ++copies;
    }
    const bool riding = inflight.contains(k);
    if (copies == 1 && !riding) continue;
    if (copies == 0 && riding) continue;
    if (copies > 1) {
      std::snprintf(buf, sizeof(buf),
                    "[%s] singularity: key %llu present on %d nodes "
                    "(e.g. %d and %d)",
                    context.c_str(), static_cast<unsigned long long>(k),
                    copies, first, second);
    } else if (copies == 1 && riding) {
      const auto& r = inflight.at(k);
      std::snprintf(buf, sizeof(buf),
                    "[%s] singularity: key %llu present on node %d AND in "
                    "flight %d->%d",
                    context.c_str(), static_cast<unsigned long long>(k),
                    first, r.from, r.to);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "[%s] singularity: key %llu absent everywhere and not "
                    "in flight",
                    context.c_str(), static_cast<unsigned long long>(k));
    }
    Fail(buf);
  }
  return failures_.size() == before;
}

bool InvariantMonitor::CheckNoLostRecords(engine::Cluster& cluster,
                                          const std::string& context) {
  const size_t before = failures_.size();
  char buf[256];
  if (!cluster.executor().inflight_records().empty()) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] lost-records check called with %zu records still in "
                  "flight (not quiescent)",
                  context.c_str(),
                  cluster.executor().inflight_records().size());
    Fail(buf);
  }
  for (Key k = 0; k < num_records_; ++k) {
    int copies = 0;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      if (cluster.node(n).store().Contains(k)) ++copies;
    }
    if (copies == 1) continue;
    std::snprintf(buf, sizeof(buf),
                  "[%s] key %llu has %d copies at quiescence (expected 1)",
                  context.c_str(), static_cast<unsigned long long>(k),
                  copies);
    Fail(buf);
  }
  return failures_.size() == before;
}

bool InvariantMonitor::CheckAgainstOracle(engine::Cluster& live,
                                          engine::RouterKind kind,
                                          const MapFactory& map_factory,
                                          const std::string& context) {
  const size_t before = failures_.size();
  char buf[256];
  // The oracle lives in its own simulation, runs the same config with NO
  // fault hooks, and consumes the live run's sequenced input verbatim.
  engine::Cluster oracle(live.config(), kind, map_factory());
  oracle.Load();
  oracle.ReplayBatches(live.command_log().batches());
  if (oracle.placement_digest().value() != live.placement_digest().value()) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] placement digest diverged: live=%016llx "
                  "oracle=%016llx (chaos changed a routing decision)",
                  context.c_str(),
                  static_cast<unsigned long long>(
                      live.placement_digest().value()),
                  static_cast<unsigned long long>(
                      oracle.placement_digest().value()));
    Fail(buf);
  }
  if (oracle.StateChecksum() != live.StateChecksum()) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] state checksum diverged: live=%016llx "
                  "oracle=%016llx (a committed write was lost or invented)",
                  context.c_str(),
                  static_cast<unsigned long long>(live.StateChecksum()),
                  static_cast<unsigned long long>(oracle.StateChecksum()));
    Fail(buf);
  }
  return failures_.size() == before;
}

bool InvariantMonitor::CheckDegradedOracle(engine::Cluster& live,
                                           engine::RouterKind kind,
                                           const MapFactory& map_factory,
                                           const std::string& context) {
  const size_t before = failures_.size();
  char buf[256];
  // Same fresh-cluster construction as CheckAgainstOracle, but the replay
  // is handed the live run's membership schedule so its batch filter makes
  // the same degraded classifications at the same batch boundaries.
  engine::Cluster oracle(live.config(), kind, map_factory());
  oracle.SetReplayMembershipSchedule(live.degraded_schedule());
  oracle.Load();
  oracle.ReplayBatches(live.command_log().batches());
  if (oracle.placement_digest().value() != live.placement_digest().value()) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] degraded placement digest diverged: live=%016llx "
                  "replay=%016llx (degraded routing not a pure function of "
                  "the membership schedule)",
                  context.c_str(),
                  static_cast<unsigned long long>(
                      live.placement_digest().value()),
                  static_cast<unsigned long long>(
                      oracle.placement_digest().value()));
    Fail(buf);
  }
  if (oracle.StateChecksum() != live.StateChecksum()) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] degraded state checksum diverged: live=%016llx "
                  "replay=%016llx (a committed write was lost or invented "
                  "at an epoch boundary)",
                  context.c_str(),
                  static_cast<unsigned long long>(live.StateChecksum()),
                  static_cast<unsigned long long>(oracle.StateChecksum()));
    Fail(buf);
  }
  if (oracle.executor().committed() != live.executor().committed() ||
      oracle.executor().aborted() != live.executor().aborted()) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] degraded commit/abort counts diverged: "
                  "live=%zu/%zu replay=%zu/%zu",
                  context.c_str(), live.executor().committed(),
                  live.executor().aborted(), oracle.executor().committed(),
                  oracle.executor().aborted());
    Fail(buf);
  }
  return failures_.size() == before;
}

bool InvariantMonitor::CheckPartitionOracle(engine::Cluster& live,
                                            engine::RouterKind kind,
                                            const MapFactory& map_factory,
                                            const std::string& context) {
  const size_t before = failures_.size();
  char buf[256];
  const sim::Network& net = live.network();
  if (net.any_cut()) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] partition oracle called with a link still cut "
                  "(heal every cut before quiescence)",
                  context.c_str());
    Fail(buf);
  }
  if (net.messages_held() != 0) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] %llu messages still parked in holding pens at "
                  "quiescence (a heal lost them — message existence "
                  "violated)",
                  context.c_str(),
                  static_cast<unsigned long long>(net.messages_held()));
    Fail(buf);
  }
  if (net.cut_deliveries() != 0) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] %llu payloads delivered while their send-time cut "
                  "was still up (held messages may only land after the "
                  "heal)",
                  context.c_str(),
                  static_cast<unsigned long long>(net.cut_deliveries()));
    Fail(buf);
  }
  // A sub-threshold cut (detector never fired, no membership transitions)
  // must leave routing untouched — fault-free replay reproduces it. A cut
  // the detector converted into epochs replays under the recorded
  // membership schedule, exactly like scripted no-stall crashes.
  if (live.degraded_schedule().events.empty()) {
    CheckAgainstOracle(live, kind, map_factory, context);
  } else {
    CheckDegradedOracle(live, kind, map_factory, context);
  }
  return failures_.size() == before;
}

bool InvariantMonitor::CheckReplicaCoherence(engine::Cluster& cluster,
                                             const std::string& context) {
  const size_t before = failures_.size();
  char buf[256];
  const auto& inflight = cluster.executor().inflight_records();
  // SnapshotCopies is sorted by (node, key), so the failure list is
  // deterministic across hash salts.
  for (const auto& [node, key, copy] : cluster.lease_manager().SnapshotCopies()) {
    const storage::Record* primary = nullptr;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      const storage::Record* r = cluster.node(n).store().Get(key);
      if (r != nullptr) {
        primary = r;
        break;  // record singularity: at most one store holds the key
      }
    }
    if (primary == nullptr) {
      const auto it = inflight.find(key);
      if (it == inflight.end()) {
        std::snprintf(buf, sizeof(buf),
                      "[%s] replica coherence: key %llu has a copy on node "
                      "%d but no primary anywhere",
                      context.c_str(), static_cast<unsigned long long>(key),
                      node);
        Fail(buf);
        continue;
      }
      primary = &it->second.record;
    }
    if (primary->value != copy.value || primary->version != copy.version) {
      std::snprintf(buf, sizeof(buf),
                    "[%s] replica coherence: key %llu copy on node %d is "
                    "(value=%016llx v%u) but primary is (value=%016llx v%u)",
                    context.c_str(), static_cast<unsigned long long>(key),
                    node, static_cast<unsigned long long>(copy.value),
                    copy.version,
                    static_cast<unsigned long long>(primary->value),
                    primary->version);
      Fail(buf);
    }
  }
  return failures_.size() == before;
}

bool InvariantMonitor::CheckReplicaChecksums(engine::ReplicaGroup& group,
                                             const std::string& context) {
  const size_t before = failures_.size();
  if (!group.ReplicasConsistent()) {
    char buf[256];
    std::string detail;
    for (int r = 0; r < group.num_replicas(); ++r) {
      if (!group.alive(r)) continue;
      std::snprintf(buf, sizeof(buf), " replica%d=%016llx", r,
                    static_cast<unsigned long long>(
                        group.replica(r).StateChecksum()));
      detail += buf;
    }
    Fail("[" + context + "] replica checksums diverged:" + detail);
  }
  return failures_.size() == before;
}

}  // namespace hermes::fault
