#ifndef HERMES_SIM_SIMULATOR_H_
#define HERMES_SIM_SIMULATOR_H_

#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace hermes::sim {

/// Discrete-event simulation driver: a virtual clock plus the event queue.
/// Components schedule closures at relative or absolute simulated times;
/// Run*() advances the clock event by event.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Stable pointer to the virtual clock, for passive observers (the
  /// obs::Tracer timestamps events through it without a Simulator
  /// dependency in the hot path).
  const SimTime* now_handle() const { return &now_; }

  /// Schedules `fn` to run `delay` microseconds from now.
  void Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when`; times in the past fire "now"
  /// (the queue never rewinds the clock).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  /// Runs events until the queue is empty or the next event is later than
  /// `deadline`; the clock ends at min(deadline, last event time).
  void RunUntil(SimTime deadline);

  /// Runs until no events remain.
  void RunAll();

  /// Number of events executed so far (diagnostics).
  uint64_t events_executed() const { return events_executed_; }

  /// Feeds every event pop's (time, seq) into `digest` (see EventQueue).
  void set_decision_digest(DecisionDigest* digest) {
    queue_.set_digest(digest);
  }

  bool idle() const { return queue_.empty(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_SIMULATOR_H_
