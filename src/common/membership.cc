#include "common/membership.h"

#include <cstdio>

namespace hermes {

std::string MembershipView::DebugString() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "membership epoch=%u down=[",
                epoch_);
  out += buf;
  bool first = true;
  for (size_t i = 0; i < down_.size(); ++i) {
    if (!down_[i]) continue;
    std::snprintf(buf, sizeof(buf), "%s%zu", first ? "" : ",", i);
    out += buf;
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace hermes
