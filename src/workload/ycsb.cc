#include "workload/ycsb.h"

#include <algorithm>
#include <cassert>

namespace hermes::workload {

YcsbWorkload::YcsbWorkload(const YcsbConfig& config,
                           const SyntheticGoogleTrace* trace)
    : config_(config),
      trace_(trace),
      rng_(config.seed),
      partition_zipf_(
          std::max<uint64_t>(config.num_records / config.num_partitions, 1),
          config.zipf_theta),
      global_zipf_(config.num_records, config.global_zipf_theta),
      partition_size_(
          std::max<uint64_t>(config.num_records / config.num_partitions, 1)) {
  assert(config.num_partitions > 0);
}

uint64_t YcsbWorkload::GlobalPeak(SimTime now) const {
  const SimTime phase = now % config_.hotspot_cycle_us;
  return static_cast<uint64_t>(
      static_cast<double>(phase) / config_.hotspot_cycle_us *
      config_.num_records);
}

int YcsbWorkload::PickPartition(SimTime now) {
  if (trace_ == nullptr) {
    return static_cast<int>(rng_.NextBounded(config_.num_partitions));
  }
  const size_t window = now / trace_->config().window_us;
  if (window != cached_window_) {
    cached_weights_ = trace_->Weights(now);
    // Trace machines map 1:1 onto partitions; excess machines fold over.
    if (static_cast<int>(cached_weights_.size()) != config_.num_partitions) {
      std::vector<double> folded(config_.num_partitions, 0.0);
      for (size_t m = 0; m < cached_weights_.size(); ++m) {
        folded[m % config_.num_partitions] += cached_weights_[m];
      }
      cached_weights_ = std::move(folded);
    }
    cached_window_ = window;
  }
  return static_cast<int>(SampleDiscrete(rng_, cached_weights_));
}

Key YcsbWorkload::LocalKey(int partition) {
  const uint64_t offset = partition_zipf_.Next(rng_);
  const Key base = static_cast<Key>(partition) * partition_size_;
  return std::min<Key>(base + offset, config_.num_records - 1);
}

TxnRequest YcsbWorkload::Next(SimTime now) {
  TxnRequest txn;
  const bool distributed = rng_.NextDouble() < config_.distributed_ratio;
  const bool read_write = rng_.NextDouble() < config_.rw_ratio;
  const uint64_t length =
      config_.length_stddev == 0.0
          ? static_cast<uint64_t>(config_.length_mean)
          : SampleClampedNormal(rng_, config_.length_mean,
                                config_.length_stddev, 1, 200);

  const int partition = PickPartition(now);
  // Distributed transactions split their accesses between the local
  // pattern and the moving global hotspot; the paper's 2-record case is
  // one local + one global record.
  const uint64_t global_count = distributed ? std::max<uint64_t>(length / 2, 1) : 0;
  const uint64_t local_count = std::max<uint64_t>(length - global_count, 1);

  std::vector<Key> keys;
  keys.reserve(local_count + global_count);
  for (uint64_t i = 0; i < local_count; ++i) keys.push_back(LocalKey(partition));
  const uint64_t peak = GlobalPeak(now);
  for (uint64_t i = 0; i < global_count; ++i) {
    keys.push_back(std::min<Key>(global_zipf_.Next(rng_, peak),
                                 config_.num_records - 1));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  txn.read_set = keys;
  if (read_write) txn.write_set = keys;
  txn.tag = partition;
  txn.home_sequencer = static_cast<NodeId>(partition);
  return txn;
}

}  // namespace hermes::workload
