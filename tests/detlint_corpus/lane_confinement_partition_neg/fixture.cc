// detlint-fixture: path=src/engine/lane_confinement_partition_neg.cc
// detlint:requires(exclusive)
void CutLink(int src, int dst);

// detlint:requires(exclusive)
void Arm(unsigned long active_until);

// detlint:runs(exclusive)
void PartitionCut(int node, int peers) {
  for (int peer = 0; peer < peers; ++peer) {
    if (peer != node) CutLink(peer, node);
  }
  Arm(0);
}

void OnFaultEvent(Simulator& sim, int node, int peers) {
  sim.Defer([node, peers] { CutLink(node, peers); });
}
