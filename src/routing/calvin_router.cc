#include "routing/calvin_router.h"

#include <algorithm>
#include <map>

#include "common/hash.h"

namespace hermes::routing {

CalvinRouter::CalvinRouter(partition::OwnershipMap* ownership,
                           const CostModel* costs, int num_nodes)
    : Router(ownership, costs, num_nodes) {}

RoutePlan CalvinRouter::RouteBatch(const Batch& batch) {
  RoutePlan plan;
  plan.routing_cost_us = LinearCost(batch.txns.size());
  plan.txns.reserve(batch.txns.size());
  for (const TxnRequest& txn : batch.txns) {
    switch (txn.kind) {
      case TxnKind::kRegular:
        plan.txns.push_back(RouteOne(txn));
        break;
      case TxnKind::kChunkMigration:
        plan.txns.push_back(PlanChunkMigrationDefault(txn));
        break;
      default:
        plan.txns.push_back(PlanProvisioningDefault(txn));
        break;
    }
  }
  return plan;
}

RoutedTxn CalvinRouter::RouteOne(const TxnRequest& txn) {
  RoutedTxn rt;
  rt.txn = txn;

  // Masters: every node owning a record the transaction touches executes
  // the transaction logic (Calvin's deterministic execution runs the code
  // on all participants; each applies only its local writes). This is the
  // multi-master scheme's resource cost the paper contrasts with
  // single-master routing.
  const auto merged = MergedAccessSet(txn);
  std::map<NodeId, int> owners;
  for (const auto& [k, is_write] : merged) {
    (void)is_write;
    ++owners[OwnerOf(k)];
  }
  rt.masters.reserve(owners.size());
  for (const auto& [node, count] : owners) {
    (void)count;
    rt.masters.push_back(node);
  }

  HashSet<Key> read_keys(txn.read_set.begin(), txn.read_set.end());
  rt.accesses.reserve(merged.size());
  for (const auto& [k, is_write] : merged) {
    Access a;
    a.key = k;
    a.owner = OwnerOf(k);
    a.is_write = is_write;
    // A record is shipped iff some other master needs its value for the
    // transaction logic (blind writes ship nothing).
    a.ship_to_master = read_keys.contains(k) && rt.masters.size() > 1;
    rt.accesses.push_back(a);
  }
  return rt;
}

}  // namespace hermes::routing
