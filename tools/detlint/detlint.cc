// detlint — determinism lint for the Hermes routing/simulation stack.
//
// Hermes' schedulers are replicated deterministic state machines: every
// replica must reach bit-identical routing, eviction and migration
// decisions from the same totally ordered input. A single hash-map
// iteration-order leak, unseeded RNG, or wall-clock read silently breaks
// replica agreement. This tool scans the source tree for the banned
// patterns CLAUDE.md's invariants describe:
//
//   unordered-iter   range-for / .begin() iteration over a hash container
//                    (std::unordered_* or hermes::HashMap/HashSet) —
//                    iteration order is unspecified and salt-dependent
//   raw-unordered    direct use of std::unordered_map/set instead of the
//                    salted hermes::HashMap/HashSet aliases (common/hash.h)
//   std-rand         std::rand / srand (global hidden state, unseeded)
//   random-device    std::random_device (hardware entropy, unreproducible)
//   unseeded-rng     std::mt19937 / default_random_engine default-
//                    constructed (implementation-defined default seed;
//                    all randomness must flow through seeded hermes::Rng)
//   wall-clock       chrono clocks / time() / gettimeofday outside src/sim
//                    (simulated time is the only clock; src/sim is exempt
//                    as the virtual-time authority)
//   pointer-order    ordered containers or comparators keyed on pointer
//                    values (allocation-address order is nondeterministic)
//   raw-thread       std::thread / mutexes / atomics / futures (or their
//                    headers) outside src/sim/. All real concurrency lives
//                    behind the epoch-synchronized simulator (DESIGN.md
//                    "Parallel simulation"); engine/routing code must stay
//                    single-threaded-per-lane so the thread count can
//                    never change an outcome
//   obs-decision     tracer/telemetry state feeding a decision: a return
//                    expression or if/while condition in src/core/ or
//                    src/routing/ that mentions obs::, a tracer, or a
//                    HERMES_TRACE symbol. Observability is write-only by
//                    contract (DESIGN.md "Observability"); routing and
//                    eviction must behave identically with tracing on,
//                    off, or absent. A bare HERMES_TRACE_ACTIVE(...) guard
//                    is exempt — it only gates event emission.
//
// A finding is suppressed by an annotation on the same line or the line
// directly above:
//
//   // detlint:allow(<rule>) <justification>
//
// The justification is mandatory and every suppression is listed in the
// report, so allowed exceptions stay reviewable. Exit status: 0 when
// clean, 1 when unsuppressed findings (or unjustified/unused suppressions)
// exist, 2 on usage errors.
//
// The scanner is textual (comments and string literals are stripped
// first); it is a tripwire for the patterns above, not a full parser. The
// runtime complement — hash-salt perturbation plus the DecisionDigest —
// lives in determinism_perturbation_test and catches what a lexical pass
// cannot prove absent.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string excerpt;
};

struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string justification;
  bool used = false;
};

struct SourceFile {
  std::string path;      // as reported (relative to the scan root's parent)
  std::string stem;      // filename without extension, for .h/.cc pairing
  bool sim_exempt = false;  // under src/sim/: may own the (virtual) clock
  std::string stripped;  // comments and string literals blanked out
  std::vector<size_t> line_starts;  // offset of each line in `stripped`
  std::vector<Suppression> suppressions;
};

/// Replaces comments, string literals and char literals with spaces,
/// preserving newlines so offsets keep mapping to line numbers.
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class St { kCode, kLine, kBlock, kStr, kChar } st = St::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::kStr;
          out[i] = ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out[i] = ' ';
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < in.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

int LineOf(const SourceFile& f, size_t offset) {
  auto it = std::upper_bound(f.line_starts.begin(), f.line_starts.end(),
                             offset);
  return static_cast<int>(it - f.line_starts.begin());
}

std::string LineText(const std::string& raw, const SourceFile& f, int line) {
  const size_t begin = f.line_starts[line - 1];
  size_t end = raw.find('\n', begin);
  if (end == std::string::npos) end = raw.size();
  std::string text = raw.substr(begin, end - begin);
  const size_t first = text.find_first_not_of(" \t");
  if (first != std::string::npos) text = text.substr(first);
  if (text.size() > 90) text = text.substr(0, 87) + "...";
  return text;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Collects identifiers declared with a hash-container type: the first
/// identifier following the matched angle-bracket group of
/// `unordered_map<...>`, `unordered_set<...>`, `HashMap<...>`,
/// `HashSet<...>`. Catches members, locals, parameters, and accessors
/// returning (references to) hash containers.
void CollectHashContainerNames(const SourceFile& f,
                               std::set<std::string>* names) {
  static const std::regex kDecl(
      R"((unordered_map|unordered_set|HashMap|HashSet)\s*<)");
  const std::string& text = f.stripped;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    size_t pos = static_cast<size_t>(it->position()) + it->length();
    int depth = 1;  // just past the opening '<'
    while (pos < text.size() && depth > 0) {
      if (text[pos] == '<') ++depth;
      if (text[pos] == '>') --depth;
      ++pos;
    }
    if (depth != 0) continue;
    // Skip whitespace and ref/pointer decorations; accept an identifier.
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '&' || text[pos] == '*')) {
      ++pos;
    }
    // `unordered_map<...>::iterator`, `HashMap<...>(...)` etc. declare
    // nothing.
    if (pos >= text.size() || !IsIdentChar(text[pos]) ||
        std::isdigit(static_cast<unsigned char>(text[pos]))) {
      continue;
    }
    size_t end = pos;
    while (end < text.size() && IsIdentChar(text[end])) ++end;
    std::string name = text.substr(pos, end - pos);
    if (name == "const" || name == "constexpr" || name == "static") continue;
    names->insert(std::move(name));
  }
}

/// Trailing identifier of a range-for sequence expression: handles `name`,
/// `obj.name`, `ptr->name`, `name()`, `obj.name()`.
std::string TrailingIdentifier(std::string expr) {
  while (!expr.empty() &&
         std::isspace(static_cast<unsigned char>(expr.back()))) {
    expr.pop_back();
  }
  if (expr.size() >= 2 && expr.substr(expr.size() - 2) == "()") {
    expr = expr.substr(0, expr.size() - 2);
    while (!expr.empty() &&
           std::isspace(static_cast<unsigned char>(expr.back()))) {
      expr.pop_back();
    }
  }
  size_t end = expr.size();
  size_t begin = end;
  while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

class Linter {
 public:
  void AddFinding(const SourceFile& f, size_t offset, const std::string& rule,
                  const std::string& raw) {
    const int line = LineOf(f, offset);
    // detlint:allow on the finding's line or the line directly above.
    for (const Suppression& s : f.suppressions) {
      if (s.rule == rule && (s.line == line || s.line + 1 == line)) {
        const_cast<Suppression&>(s).used = true;
        return;
      }
    }
    findings_.push_back(Finding{f.path, line, rule, LineText(raw, f, line)});
  }

  void Scan(SourceFile& f, const std::string& raw,
            const std::set<std::string>& hash_names) {
    const std::string& text = f.stripped;

    auto scan_regex = [&](const std::regex& re, const std::string& rule) {
      for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
           it != std::sregex_iterator(); ++it) {
        AddFinding(f, static_cast<size_t>(it->position()), rule, raw);
      }
    };

    static const std::regex kStdRand(
        R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|\brand\s*\()");
    scan_regex(kStdRand, "std-rand");

    static const std::regex kRandomDevice(R"(\brandom_device\b)");
    scan_regex(kRandomDevice, "random-device");

    static const std::regex kUnseeded(
        R"(\b(?:std\s*::\s*)?(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?|ranlux\w+|knuth_b)\s+[A-Za-z_]\w*\s*;)");
    scan_regex(kUnseeded, "unseeded-rng");

    // Raw threading primitives outside src/sim/: the simulator is the only
    // component allowed to spawn threads or synchronize; everything else
    // must express concurrency as lanes + Defer() so execution order stays
    // a pure function of the event DAG.
    if (!f.sim_exempt) {
      static const std::regex kRawThread(
          R"(\bstd\s*::\s*(?:thread|jthread|mutex|timed_mutex|recursive_mutex|shared_mutex|condition_variable(?:_any)?|atomic(?:_\w+)?|lock_guard|unique_lock|scoped_lock|shared_lock|future|promise|async|barrier|latch|counting_semaphore|binary_semaphore)\b|#\s*include\s*<(?:thread|mutex|atomic|condition_variable|future|shared_mutex|stop_token|semaphore|barrier|latch)>)");
      scan_regex(kRawThread, "raw-thread");
    }

    if (!f.sim_exempt) {
      static const std::regex kWallClock(
          R"(\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\bclock_gettime\b|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|\blocaltime\b|\bgmtime\b)");
      scan_regex(kWallClock, "wall-clock");
    }

    static const std::regex kPointerOrder(
        R"(\b(?:std\s*::\s*)?(?:map|set|less|greater)\s*<\s*(?:const\s+)?[\w:]+\s*\*)");
    scan_regex(kPointerOrder, "pointer-order");

    // Raw std::unordered_* use (must go through hermes::HashMap/HashSet so
    // HERMES_HASH_SALT perturbs every container). common/hash.h itself
    // defines the aliases and is exempt.
    if (f.path.find("common/hash.h") == std::string::npos) {
      static const std::regex kRawUnordered(R"(\bunordered_(?:map|set)\b)");
      scan_regex(kRawUnordered, "raw-unordered");
    }

    // Iteration over hash containers: range-for whose sequence resolves to
    // a known hash-container name, or .begin()/.cbegin() on one. The for
    // header is scanned with real paren matching (a regex overshoots when
    // a single-line body contains calls).
    static const std::regex kForOpen(R"(\bfor\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kForOpen);
         it != std::sregex_iterator(); ++it) {
      const size_t open =
          static_cast<size_t>(it->position()) + it->length() - 1;
      size_t pos = open + 1;
      int depth = 1;
      size_t colon = std::string::npos;
      while (pos < text.size() && depth > 0) {
        const char c = text[pos];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
        if (c == ';' && depth == 1) break;  // classic for, not range-for
        if (c == ':' && depth == 1 && colon == std::string::npos &&
            text[pos - 1] != ':' &&
            (pos + 1 >= text.size() || text[pos + 1] != ':')) {
          colon = pos;
        }
        ++pos;
      }
      if (depth != 0 || colon == std::string::npos) continue;
      // pos - 1 is the for-header's closing ')'.
      const std::string name =
          TrailingIdentifier(text.substr(colon + 1, pos - 1 - (colon + 1)));
      if (!name.empty() && hash_names.count(name) > 0) {
        AddFinding(f, static_cast<size_t>(it->position()), "unordered-iter",
                   raw);
      }
    }
    static const std::regex kBegin(
        R"(([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*\.\s*c?begin\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kBegin);
         it != std::sregex_iterator(); ++it) {
      if (hash_names.count((*it)[1].str()) > 0) {
        AddFinding(f, static_cast<size_t>(it->position()), "unordered-iter",
                   raw);
      }
    }

    // Observability feeding decisions (src/core/ and src/routing/ only):
    // routing, eviction and migration planning must compute the same
    // answer whether a tracer is attached or not, so tracer/telemetry
    // symbols may never appear in a return expression or a branch
    // condition there. Emission itself (HERMES_TRACE(...) as a statement,
    // or a bare HERMES_TRACE_ACTIVE(...) guard around one) is fine.
    if (f.path.find("src/core/") != std::string::npos ||
        f.path.find("src/routing/") != std::string::npos) {
      static const std::regex kObsSym(
          R"(\bobs\s*::|\btracer|\bHERMES_TRACE)");
      static const std::regex kObsReturn(
          R"(\breturn\b[^;{}]*(?:\bobs\s*::|\btracer|\bHERMES_TRACE))");
      scan_regex(kObsReturn, "obs-decision");
      static const std::regex kCondOpen(R"(\b(?:if|while)\s*\()");
      static const std::regex kActiveGuard(
          R"(\s*!?\s*HERMES_TRACE_ACTIVE\s*\([^()]*\)\s*)");
      for (auto it =
               std::sregex_iterator(text.begin(), text.end(), kCondOpen);
           it != std::sregex_iterator(); ++it) {
        const size_t open =
            static_cast<size_t>(it->position()) + it->length() - 1;
        size_t pos = open + 1;
        int depth = 1;
        while (pos < text.size() && depth > 0) {
          if (text[pos] == '(') ++depth;
          if (text[pos] == ')') --depth;
          ++pos;
        }
        if (depth != 0) continue;
        const std::string cond = text.substr(open + 1, pos - 1 - (open + 1));
        if (!std::regex_search(cond, kObsSym)) continue;
        if (std::regex_match(cond, kActiveGuard)) continue;
        AddFinding(f, static_cast<size_t>(it->position()), "obs-decision",
                   raw);
      }
    }
  }

  std::vector<Finding> findings_;
};

const std::set<std::string> kKnownRules = {
    "unordered-iter", "raw-unordered", "std-rand",      "random-device",
    "unseeded-rng",   "wall-clock",    "pointer-order", "obs-decision",
    "raw-thread"};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) {
    std::fprintf(stderr, "usage: detlint <dir-or-file>...\n");
    return 2;
  }

  // ---- Load all files. ----
  std::vector<SourceFile> files;
  std::vector<std::string> raws;
  for (const std::string& root : roots) {
    std::vector<fs::path> paths;
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
          paths.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root)) {
      paths.emplace_back(root);
    } else {
      std::fprintf(stderr, "detlint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      std::ifstream in(p);
      if (!in) {
        std::fprintf(stderr, "detlint: cannot read %s\n", p.c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      raws.push_back(ss.str());

      SourceFile f;
      f.path = p.generic_string();
      f.stem = p.stem().string();
      f.sim_exempt = f.path.find("src/sim/") != std::string::npos;
      f.stripped = StripCommentsAndStrings(raws.back());
      f.line_starts.push_back(0);
      for (size_t i = 0; i < f.stripped.size(); ++i) {
        if (f.stripped[i] == '\n') f.line_starts.push_back(i + 1);
      }
      files.push_back(std::move(f));
    }
  }

  // ---- Parse suppressions (from the raw text — they live in comments). ----
  static const std::regex kAllow(
      R"(detlint:allow\(([A-Za-z0-9_-]+)\)[ \t]*([^\n]*))");
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& raw = raws[i];
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), kAllow);
         it != std::sregex_iterator(); ++it) {
      Suppression s;
      s.file = files[i].path;
      s.line = LineOf(files[i], static_cast<size_t>(it->position()));
      s.rule = (*it)[1].str();
      s.justification = (*it)[2].str();
      while (!s.justification.empty() &&
             std::isspace(static_cast<unsigned char>(s.justification.back()))) {
        s.justification.pop_back();
      }
      files[i].suppressions.push_back(std::move(s));
    }
  }

  // ---- Collect hash-container names, grouped by file stem so a .cc sees
  // the members its paired header declares. Getter names (e.g. records())
  // are collected too, so cross-file `obj.records()` iteration is caught
  // via the global set as a fallback. ----
  std::map<std::string, std::set<std::string>> names_by_stem;
  std::set<std::string> global_names;
  for (const SourceFile& f : files) {
    std::set<std::string> names;
    CollectHashContainerNames(f, &names);
    names_by_stem[f.stem].insert(names.begin(), names.end());
    global_names.insert(names.begin(), names.end());
  }

  // ---- Scan. ----
  Linter linter;
  for (size_t i = 0; i < files.size(); ++i) {
    // The per-stem set exists so false positives stay local; the global
    // set is the safety net for cross-file accessors. Both are hash-
    // container names only, so the union is still tightly scoped.
    std::set<std::string> names = global_names;
    linter.Scan(files[i], raws[i], names);
  }

  // ---- Report. ----
  int errors = 0;
  std::sort(linter.findings_.begin(), linter.findings_.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  for (const Finding& f : linter.findings_) {
    std::printf("%s:%d: error: [%s] %s\n", f.file.c_str(), f.line,
                f.rule.c_str(), f.excerpt.c_str());
    ++errors;
  }

  int suppression_count = 0;
  for (const SourceFile& f : files) {
    for (const Suppression& s : f.suppressions) {
      ++suppression_count;
      if (kKnownRules.count(s.rule) == 0) {
        std::printf("%s:%d: error: suppression names unknown rule '%s'\n",
                    s.file.c_str(), s.line, s.rule.c_str());
        ++errors;
        continue;
      }
      if (s.justification.empty()) {
        std::printf(
            "%s:%d: error: suppression of [%s] without a justification\n",
            s.file.c_str(), s.line, s.rule.c_str());
        ++errors;
        continue;
      }
      if (!s.used) {
        std::printf("%s:%d: error: unused suppression of [%s] (stale?)\n",
                    s.file.c_str(), s.line, s.rule.c_str());
        ++errors;
        continue;
      }
      std::printf("%s:%d: allowed [%s]: %s\n", s.file.c_str(), s.line,
                  s.rule.c_str(), s.justification.c_str());
    }
  }

  std::printf(
      "detlint: %zu files, %d finding(s), %d suppression(s) listed above\n",
      files.size(), errors, suppression_count);
  return errors == 0 ? 0 : 1;
}
