// detlint-fixture: path=src/sim/wall_clock_neg.cc
uint64_t Anchor() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
