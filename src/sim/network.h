#ifndef HERMES_SIM_NETWORK_H_
#define HERMES_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace hermes::sim {

/// Point-to-point message fabric between simulated nodes. Delivery time is
/// latency + bytes * us_per_byte; per-node byte counters feed the Fig. 8
/// network-usage series. Messages between a node and itself are delivered
/// after zero wire time (still asynchronously, preserving event ordering).
class Network {
 public:
  Network(Simulator* sim, const CostModel* costs, int num_nodes);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends `payload_bytes` of application payload from `src` to `dst` and
  /// runs `on_delivery` when the message lands. Framing overhead is added
  /// to the byte count automatically.
  void Send(NodeId src, NodeId dst, uint64_t payload_bytes,
            std::function<void()> on_delivery);

  /// Grows counters when nodes are added by dynamic provisioning.
  void EnsureCapacity(int num_nodes);

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }
  uint64_t bytes_sent(NodeId node) const { return bytes_sent_[node]; }

 private:
  Simulator* sim_;
  const CostModel* costs_;
  std::vector<uint64_t> bytes_sent_;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_NETWORK_H_
