// Tests for OLLP (Optimistic Lock Location Prediction, §2.1): requests
// whose read/write sets are not derivable up front run a reconnaissance
// read before sequencing; stale predictions abort deterministically and
// retry once.

#include <memory>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

ClusterConfig OllpConfig(double stale_prob) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 10'000;
  config.ollp_stale_prob = stale_prob;
  return config;
}

std::unique_ptr<Cluster> MakeCluster(const ClusterConfig& config) {
  auto cluster = std::make_unique<Cluster>(
      config, RouterKind::kHermes,
      std::make_unique<partition::RangePartitionMap>(config.num_records,
                                                     config.num_nodes));
  cluster->Load();
  return cluster;
}

TxnRequest OllpTxn(std::vector<Key> keys) {
  TxnRequest txn;
  txn.read_set = keys;
  txn.write_set = std::move(keys);
  txn.requires_reconnaissance = true;
  return txn;
}

TEST(OllpTest, ReconnaissancePrecedesCommit) {
  ClusterConfig config = OllpConfig(0.0);
  config.epoch_us = 100;  // epochs shorter than the probe round trip
  auto cluster = MakeCluster(config);
  bool done = false;
  SimTime commit_time = 0;
  cluster->Submit(OllpTxn({5, 9000}), [&](const engine::TxnResult& r) {
    EXPECT_FALSE(r.aborted);
    done = true;
    commit_time = cluster->Now();
  });
  cluster->Drain();
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster->ollp_reconnaissance_count(), 1u);
  EXPECT_EQ(cluster->ollp_retry_count(), 0u);

  // A plain request commits faster: the probe costs a round trip.
  auto baseline = MakeCluster(config);
  TxnRequest plain;
  plain.read_set = {5, 9000};
  plain.write_set = {5, 9000};
  SimTime plain_commit = 0;
  baseline->Submit(plain, [&](const engine::TxnResult&) {
    plain_commit = baseline->Now();
  });
  baseline->Drain();
  EXPECT_GT(commit_time, plain_commit);
}

TEST(OllpTest, StalePredictionAbortsAndRetries) {
  auto cluster = MakeCluster(OllpConfig(1.0));  // always stale
  bool done = false;
  cluster->Submit(OllpTxn({5, 9000}), [&](const engine::TxnResult& r) {
    EXPECT_FALSE(r.aborted);  // the retry commits
    done = true;
  });
  cluster->Drain();
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster->ollp_retry_count(), 1u);
  // The aborted first attempt shows up in the metrics.
  EXPECT_EQ(cluster->metrics().total_aborts(), 1u);
  EXPECT_EQ(cluster->metrics().total_commits(), 1u);
  // Both attempts entered the command log (determinism requires it).
  size_t logged = 0;
  for (const auto& batch : cluster->command_log().batches()) {
    logged += batch.txns.size();
  }
  EXPECT_EQ(logged, 2u);
}

TEST(OllpTest, AbortedFirstAttemptStillWritesNothing) {
  auto cluster = MakeCluster(OllpConfig(1.0));
  cluster->Submit(OllpTxn({5, 9000}));
  cluster->Drain();
  // One committed write in total (from the retry), not two.
  const NodeId owner = cluster->ownership().Owner(5);
  EXPECT_EQ(cluster->node(owner).store().Get(5)->version, 1u);
}

TEST(OllpTest, MixedWorkloadDrainsCleanly) {
  auto cluster = MakeCluster(OllpConfig(0.3));
  workload::YcsbConfig wl;
  wl.num_records = 10'000;
  wl.num_partitions = 4;
  wl.seed = 77;
  workload::YcsbWorkload gen(wl, nullptr);
  Rng flip(9);
  workload::ClosedLoopDriver driver(cluster.get(), 16, [&](int, SimTime now) {
    TxnRequest txn = gen.Next(now);
    txn.requires_reconnaissance = flip.NextDouble() < 0.5;
    return txn;
  });
  driver.set_stop_time(SecToSim(1));
  driver.Start();
  cluster->RunUntil(SecToSim(1));
  cluster->Drain();

  EXPECT_GT(cluster->ollp_reconnaissance_count(), 100u);
  EXPECT_GT(cluster->ollp_retry_count(), 10u);
  EXPECT_EQ(cluster->executor().inflight(), 0u);
  EXPECT_GT(cluster->metrics().total_commits(), 200u);
}

TEST(OllpTest, DeterministicAcrossRuns) {
  auto run = [] {
    auto cluster = MakeCluster(OllpConfig(0.25));
    workload::YcsbConfig wl;
    wl.num_records = 10'000;
    wl.num_partitions = 4;
    wl.seed = 31;
    workload::YcsbWorkload gen(wl, nullptr);
    workload::ClosedLoopDriver driver(cluster.get(), 8,
                                      [&](int, SimTime now) {
                                        TxnRequest txn = gen.Next(now);
                                        txn.requires_reconnaissance = true;
                                        return txn;
                                      });
    driver.set_stop_time(MsToSim(500));
    driver.Start();
    cluster->RunUntil(MsToSim(500));
    cluster->Drain();
    return cluster->StateChecksum() ^ cluster->ollp_retry_count();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hermes
