#include "obs/trace.h"

#include <cstdio>
#include <inttypes.h>

namespace hermes::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnDispatch:
      return "txn_dispatch";
    case EventKind::kTxnCommit:
      return "txn_commit";
    case EventKind::kTxnAbort:
      return "txn_abort";
    case EventKind::kPhaseSequence:
      return "phase_sequence";
    case EventKind::kPhaseLockWait:
      return "phase_lock_wait";
    case EventKind::kPhaseRemoteWait:
      return "phase_remote_wait";
    case EventKind::kPhaseExecute:
      return "phase_execute";
    case EventKind::kBatchSequenced:
      return "batch_sequenced";
    case EventKind::kBatchRouted:
      return "batch_routed";
    case EventKind::kAccess:
      return "access";
    case EventKind::kRecordExtract:
      return "record_extract";
    case EventKind::kRecordDeliver:
      return "record_deliver";
    case EventKind::kRecordSuppress:
      return "record_suppress";
    case EventKind::kRecordReclaim:
      return "record_reclaim";
    case EventKind::kRecordReship:
      return "record_reship";
    case EventKind::kFusionEvict:
      return "fusion_evict";
    case EventKind::kLeaseGrant:
      return "lease_grant";
    case EventKind::kLeaseRevoke:
      return "lease_revoke";
    case EventKind::kReplicaInstall:
      return "replica_install";
    case EventKind::kReplicaUpdate:
      return "replica_update";
    case EventKind::kChunkMigration:
      return "chunk_migration";
    case EventKind::kNodeProvision:
      return "node_provision";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRejoin:
      return "rejoin";
    case EventKind::kWatchdogAbort:
      return "watchdog_abort";
    case EventKind::kTxnResume:
      return "txn_resume";
    case EventKind::kStranded:
      return "stranded";
    case EventKind::kPark:
      return "park";
    case EventKind::kRetry:
      return "retry";
    case EventKind::kUnavailable:
      return "unavailable";
    case EventKind::kPartitionCut:
      return "partition_cut";
    case EventKind::kPartitionHeal:
      return "partition_heal";
    case EventKind::kHeartbeatMiss:
      return "heartbeat_miss";
    case EventKind::kDetectorSuspect:
      return "detector_suspect";
    case EventKind::kDetectorRestore:
      return "detector_restore";
    case EventKind::kInvariantViolation:
      return "invariant_violation";
  }
  return "unknown";
}

bool IsSpan(EventKind kind) {
  switch (kind) {
    case EventKind::kPhaseSequence:
    case EventKind::kPhaseLockWait:
    case EventKind::kPhaseRemoteWait:
    case EventKind::kPhaseExecute:
    case EventKind::kBatchRouted:
    case EventKind::kRetry:
      return true;
    default:
      return false;
  }
}

std::vector<TraceEvent> TraceRing::InOrder() const {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    out.push_back(events[(head_ + i) % events.size()]);
  }
  return out;
}

void Tracer::Configure(size_t ring_capacity, size_t num_nodes) {
  ring_capacity_ = ring_capacity > 0 ? ring_capacity : 1;
  rings_.clear();
  if (num_nodes > 0) {
    for (size_t i = 0; i < num_nodes + 1; ++i) {
      rings_.emplace_back(ring_capacity_);
    }
  }
}

TraceRing& Tracer::RingFor(NodeId node) {
  const size_t idx = node == kInvalidNode ? 0 : static_cast<size_t>(node) + 1;
  while (rings_.size() <= idx) {
    rings_.emplace_back(ring_capacity_);
  }
  return rings_[idx];
}

DecisionDigest Tracer::digest() const {
  DecisionDigest fold;
  for (const auto& r : rings_) {
    if (r.digest.count() == 0) continue;
    fold.Mix(r.digest.value());
    fold.Mix(r.digest.count());
  }
  return fold;
}

void Tracer::Emit(EventKind kind, NodeId node, TxnId txn, Key key,
                  uint64_t arg, SimTime when, SimTime dur) {
  TraceRing& ring = RingFor(node);
  TraceEvent e;
  e.when = when;
  e.dur = dur;
  e.seq = ring.next_seq++;
  e.txn = txn;
  e.key = key;
  e.arg = arg;
  e.node = node;
  e.kind = kind;
  if (enabled_) {
    ring.digest.Mix(static_cast<uint64_t>(e.kind));
    ring.digest.Mix(e.when);
    ring.digest.Mix(e.dur);
    ring.digest.Mix(static_cast<uint64_t>(static_cast<int64_t>(e.node)));
    ring.digest.Mix(e.txn);
    ring.digest.Mix(e.key);
    ring.digest.Mix(e.arg);
    ring.Push(e);
  }
  if (mirror_key_ != kNoMirror && key == mirror_key_) {
    std::fprintf(stderr,
                 "[trace %" PRIu64 "us] %s txn=%" PRIu64 " key=%" PRIu64
                 " node=%d arg=%" PRIu64 "\n",
                 e.when, EventKindName(kind), e.txn, e.key,
                 static_cast<int>(e.node), e.arg);
  }
}

uint64_t Tracer::total_recorded() const {
  uint64_t n = 0;
  for (const auto& r : rings_) n += r.recorded;
  return n;
}

uint64_t Tracer::total_dropped() const {
  uint64_t n = 0;
  for (const auto& r : rings_) n += r.dropped;
  return n;
}

}  // namespace hermes::obs
