#include "workload/distributions.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace hermes::workload {
namespace {

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator zipf(1000, 0.9);
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, SkewsTowardLowKeys) {
  ZipfianGenerator zipf(10'000, 0.9);
  Rng rng(2);
  int head = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(rng) < 100) ++head;  // hottest 1%
  }
  // With theta=0.9, the top 1% of keys draw a large share of accesses.
  EXPECT_GT(head, kSamples / 4);
}

TEST(ZipfianTest, LowerThetaIsFlatter) {
  Rng rng1(3), rng2(3);
  ZipfianGenerator hot(10'000, 0.95), mild(10'000, 0.4);
  int hot_head = 0, mild_head = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (hot.Next(rng1) < 100) ++hot_head;
    if (mild.Next(rng2) < 100) ++mild_head;
  }
  EXPECT_GT(hot_head, mild_head);
}

TEST(ZipfianTest, SingleElementDomain) {
  ZipfianGenerator zipf(1, 0.9);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(rng), 0u);
}

TEST(ZipfianTest, LargeDomainSetupIsFast) {
  // The zeta tail approximation keeps construction cheap for 200M keys.
  ZipfianGenerator zipf(200'000'000, 0.99);
  Rng rng(5);
  EXPECT_LT(zipf.Next(rng), 200'000'000u);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator zipf(10'000, 0.9);
  Rng rng(6);
  // The hottest values should NOT cluster in the low range.
  int low = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (zipf.Next(rng) < 1000) ++low;
  }
  EXPECT_LT(low, 3000);
  EXPECT_GT(low, 200);
}

TEST(TwoSidedZipfianTest, ClustersAroundPeak) {
  TwoSidedZipfian dist(100'000, 0.9);
  Rng rng(7);
  const uint64_t peak = 50'000;
  int near = 0;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = dist.Next(rng, peak);
    ASSERT_LT(v, 100'000u);
    const uint64_t d = v > peak ? v - peak : peak - v;
    if (d < 1000) ++near;
  }
  // With theta=0.9 on a 100k domain, roughly half the mass sits within 1%
  // of the peak.
  EXPECT_GT(near, 4000);
}

TEST(TwoSidedZipfianTest, WrapsAroundKeySpace) {
  TwoSidedZipfian dist(1000, 0.9);
  Rng rng(8);
  // Peak at the very edge: samples must still be valid (wrapped).
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(dist.Next(rng, 0), 1000u);
    EXPECT_LT(dist.Next(rng, 999), 1000u);
  }
}

TEST(TwoSidedZipfianTest, BothSidesSampled) {
  TwoSidedZipfian dist(100'000, 0.9);
  Rng rng(9);
  const uint64_t peak = 50'000;
  int above = 0, below = 0;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = dist.Next(rng, peak);
    if (v > peak) ++above;
    if (v < peak) ++below;
  }
  EXPECT_GT(above, 2000);
  EXPECT_GT(below, 2000);
}

TEST(ClampedNormalTest, RespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = SampleClampedNormal(rng, 10, 10, 1, 50);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
}

TEST(ClampedNormalTest, MeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(SampleClampedNormal(rng, 20, 5, 1, 200));
  }
  EXPECT_NEAR(sum / kSamples, 20.0, 0.5);
}

TEST(ClampedNormalTest, ZeroStddevIsConstant) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleClampedNormal(rng, 7, 0, 1, 100), 7u);
  }
}

TEST(SampleDiscreteTest, FollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::map<size_t, int> counts;
  for (int i = 0; i < 40'000; ++i) ++counts[SampleDiscrete(rng, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(SampleDiscreteTest, SingleBucket) {
  Rng rng(14);
  EXPECT_EQ(SampleDiscrete(rng, {5.0}), 0u);
}

class ZipfianThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianThetaSweep, HeadMassIsMonotoneInTheta) {
  const double theta = GetParam();
  ZipfianGenerator zipf(100'000, theta);
  Rng rng(42);
  int head = 0;
  constexpr int kSamples = 30'000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(rng) < 1000) ++head;  // hottest 1%
  }
  const double frac = static_cast<double>(head) / kSamples;
  // Sanity band per theta: more skew -> more head mass; uniform-ish
  // lower bound is 1%.
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.95);
  // Monotonicity vs a flatter generator.
  if (theta > 0.35) {
    ZipfianGenerator flat(100'000, theta - 0.25);
    Rng rng2(42);
    int flat_head = 0;
    for (int i = 0; i < kSamples; ++i) {
      if (flat.Next(rng2) < 1000) ++flat_head;
    }
    EXPECT_GT(head, flat_head);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianThetaSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8, 0.9, 0.99),
                         [](const auto& info) {
                           return "theta" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

}  // namespace
}  // namespace hermes::workload
