// Unit tests for the prescient routing's ablation switches and their
// behavioural consequences.

#include <memory>

#include <gtest/gtest.h>

#include "core/hermes_router.h"
#include "partition/partition_map.h"

namespace hermes::core {
namespace {

using partition::CustomRangePartitionMap;
using partition::OwnershipMap;
using partition::RangePartitionMap;
using routing::RoutePlan;
using routing::RoutedTxn;

TxnRequest MakeTxn(TxnId id, std::vector<Key> reads, std::vector<Key> writes) {
  TxnRequest txn;
  txn.id = id;
  txn.read_set = std::move(reads);
  txn.write_set = std::move(writes);
  return txn;
}

Batch PaperBatch() {
  // The Fig. 5 example batch (keys A..E = 0..4).
  Batch batch;
  batch.txns = {
      MakeTxn(1, {0, 1, 2}, {2}), MakeTxn(2, {2, 3, 4}, {2}),
      MakeTxn(3, {0, 1, 2}, {2}), MakeTxn(4, {3}, {3}),
      MakeTxn(5, {2}, {2}),       MakeTxn(6, {2}, {2}),
  };
  return batch;
}

std::unique_ptr<OwnershipMap> PaperOwnership() {
  return std::make_unique<OwnershipMap>(
      std::make_unique<CustomRangePartitionMap>(std::vector<Key>{0, 2, 5, 5}));
}

TEST(HermesAblationTest, NoReorderKeepsSequencerOrder) {
  auto ownership = PaperOwnership();
  CostModel costs;
  HermesConfig config;
  config.enable_reorder = false;
  HermesRouter router(ownership.get(), &costs, 3, config);
  RoutePlan plan = router.RouteBatch(PaperBatch());
  for (size_t i = 0; i < plan.txns.size(); ++i) {
    EXPECT_EQ(plan.txns[i].txn.id, i + 1);
  }
  EXPECT_EQ(router.stats().reorders, 0u);
}

TEST(HermesAblationTest, NoReorderCausesPingPong) {
  // Without reordering, the Fig. 5 batch migrates C more often than the
  // two moves the full algorithm needs.
  auto count_migrations = [](bool reorder) {
    auto ownership = PaperOwnership();
    CostModel costs;
    HermesConfig config;
    config.enable_reorder = reorder;
    HermesRouter router(ownership.get(), &costs, 3, config);
    (void)router.RouteBatch(PaperBatch());
    return router.stats().migrations;
  };
  EXPECT_GT(count_migrations(false), count_migrations(true));
}

TEST(HermesAblationTest, NoRebalanceAllowsOverload) {
  auto ownership = PaperOwnership();
  CostModel costs;
  HermesConfig config;
  config.enable_rebalance = false;
  HermesRouter router(ownership.get(), &costs, 3, config);
  RoutePlan plan = router.RouteBatch(PaperBatch());
  // All six transactions chase node 1's data; theta=2 is violated.
  std::vector<int> load(3, 0);
  for (const RoutedTxn& rt : plan.txns) ++load[rt.masters[0]];
  EXPECT_GT(*std::max_element(load.begin(), load.end()), 2);
  EXPECT_EQ(router.stats().reroutes, 0u);
}

TEST(HermesAblationTest, ForwardPassStillBalances) {
  auto ownership = PaperOwnership();
  CostModel costs;
  HermesConfig config;
  config.backward_pass = false;
  HermesRouter router(ownership.get(), &costs, 3, config);
  RoutePlan plan = router.RouteBatch(PaperBatch());
  std::vector<int> load(3, 0);
  for (const RoutedTxn& rt : plan.txns) ++load[rt.masters[0]];
  for (int l : load) EXPECT_LE(l, 2);
}

TEST(HermesAblationTest, PassDirectionsDifferInMoves) {
  // Forward and backward walks pick different transactions to move when
  // several candidates are eligible.
  auto run = [](bool backward) {
    OwnershipMap ownership(std::make_unique<RangePartitionMap>(100, 4));
    CostModel costs;
    HermesConfig config;
    config.backward_pass = backward;
    HermesRouter router(&ownership, &costs, 4, config);
    std::vector<TxnRequest> txns;
    // Chain sharing node 0's keys: rebalancing must move some of them.
    for (TxnId i = 1; i <= 12; ++i) {
      txns.push_back(MakeTxn(i, {1, 2, static_cast<Key>(i)},
                             {static_cast<Key>(i)}));
    }
    Batch batch;
    batch.txns = std::move(txns);
    RoutePlan plan = router.RouteBatch(batch);
    uint64_t digest = 0;
    for (const auto& rt : plan.txns) {
      digest = digest * 31 + static_cast<uint64_t>(rt.masters[0]) + rt.txn.id;
    }
    return digest;
  };
  EXPECT_NE(run(true), run(false));
}

TEST(HermesAblationTest, AlphaLoosensTheCap) {
  auto load_spread = [](double alpha) {
    auto ownership = PaperOwnership();
    CostModel costs;
    HermesConfig config;
    config.alpha = alpha;
    HermesRouter router(ownership.get(), &costs, 3, config);
    RoutePlan plan = router.RouteBatch(PaperBatch());
    std::vector<int> load(3, 0);
    for (const RoutedTxn& rt : plan.txns) ++load[rt.masters[0]];
    return *std::max_element(load.begin(), load.end());
  };
  EXPECT_EQ(load_spread(0.0), 2);   // theta = 2
  EXPECT_GE(load_spread(1.0), 3);   // theta = 4: locality wins
}

}  // namespace
}  // namespace hermes::core
