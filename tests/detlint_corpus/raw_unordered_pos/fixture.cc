// detlint-fixture: path=src/core/raw_unordered_pos.cc
#include <unordered_map>

std::unordered_map<int, int> m_;
