#include "engine/sequencer.h"

#include <vector>

#include <gtest/gtest.h>

namespace hermes::engine {
namespace {

TEST(SequencerTest, BatchesAtEpochBoundaries) {
  sim::Simulator sim;
  ClusterConfig config;
  config.epoch_us = 1000;
  config.costs.total_order_us = 400;
  std::vector<Batch> batches;
  Sequencer seq(&sim, &config, [&](Batch&& b) { batches.push_back(b); });

  seq.Submit(TxnRequest{});
  seq.Submit(TxnRequest{});
  sim.RunAll();

  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].id, 0u);
  EXPECT_EQ(batches[0].txns.size(), 2u);
  // Cut at the first epoch boundary + total-order round trip.
  EXPECT_EQ(batches[0].sequenced_at, 1400u);
}

TEST(SequencerTest, AssignsMonotonicTxnIds) {
  sim::Simulator sim;
  ClusterConfig config;
  std::vector<Batch> batches;
  Sequencer seq(&sim, &config, [&](Batch&& b) { batches.push_back(b); });
  for (int i = 0; i < 5; ++i) seq.Submit(TxnRequest{});
  sim.RunAll();
  ASSERT_EQ(batches.size(), 1u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(batches[0].txns[i].id, i);
}

TEST(SequencerTest, LaterSubmissionsFormLaterBatches) {
  sim::Simulator sim;
  ClusterConfig config;
  config.epoch_us = 1000;
  std::vector<Batch> batches;
  Sequencer seq(&sim, &config, [&](Batch&& b) { batches.push_back(b); });

  seq.Submit(TxnRequest{});
  sim.Schedule(2500, [&] { seq.Submit(TxnRequest{}); });
  sim.RunAll();

  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].id, 0u);
  EXPECT_EQ(batches[1].id, 1u);
  EXPECT_EQ(batches[1].txns[0].id, 1u);
}

TEST(SequencerTest, MaxBatchSizeSplitsBacklog) {
  sim::Simulator sim;
  ClusterConfig config;
  config.epoch_us = 1000;
  config.max_batch_size = 3;
  std::vector<Batch> batches;
  Sequencer seq(&sim, &config, [&](Batch&& b) { batches.push_back(b); });
  for (int i = 0; i < 7; ++i) seq.Submit(TxnRequest{});
  sim.RunAll();

  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].txns.size(), 3u);
  EXPECT_EQ(batches[1].txns.size(), 3u);
  EXPECT_EQ(batches[2].txns.size(), 1u);
}

TEST(SequencerTest, IdleSequencerSchedulesNothing) {
  sim::Simulator sim;
  ClusterConfig config;
  int calls = 0;
  Sequencer seq(&sim, &config, [&](Batch&&) { ++calls; });
  sim.RunAll();
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(sim.idle());
}

TEST(SequencerTest, RestoreCountersContinuesSequence) {
  sim::Simulator sim;
  ClusterConfig config;
  std::vector<Batch> batches;
  Sequencer seq(&sim, &config, [&](Batch&& b) { batches.push_back(b); });
  seq.RestoreCounters(7, 1000);
  seq.Submit(TxnRequest{});
  sim.RunAll();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].id, 7u);
  EXPECT_EQ(batches[0].txns[0].id, 1000u);
}

}  // namespace
}  // namespace hermes::engine
